"""`ServingBatcher` — coalesce in-flight requests into one forward-only
:class:`repro.planning.BatchPlan` and execute it.

The §4.2.3 insight transfers from training microbatches to serving
requests verbatim: nearby cameras share in-frustum Gaussian sets, so (a)
requests for the *same* view collapse into a single render, (b) the
remaining distinct views are ordered by the planner's TSP so consecutive
working sets overlap maximally, and (c) the whole plan is memoized in the
fingerprint-keyed :class:`repro.planning.PlanCache` — a recurring batch
composition (viewers dwelling on a guided tour, a hot viewpoint) skips
culling-set algebra and ordering entirely.

Execution is forward-only: each step gathers its working set and renders
through a callable with the :class:`EngineBase <repro.engines.base.EngineBase>`
forward contract (``fn(camera, model_like) -> RenderResult``), normally
:meth:`repro.engines.base.EngineBase.render_forward` — blend-state
retention off, no gradient buffers (see :mod:`repro.core.memory_model`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gaussians.camera import Camera
from repro.planning.planner import BatchPlanner
from repro.serving.lod import LodSelector
from repro.serving.metrics import STATUS_DONE, STATUS_FAILED, RequestRecord
from repro.serving.requests import RenderRequest
from repro.serving.resilience import (
    CircuitBreaker,
    RenderFaultInjector,
    ResilienceConfig,
)

#: The forward-render contract shared with ``EngineBase``.
ForwardRenderFn = Callable[[Camera, object], object]


@dataclass
class BatcherCounters:
    """Cumulative coalescing statistics across a serving run."""

    batches: int = 0
    requests: int = 0
    renders: int = 0  # distinct views actually rendered
    lod_level_renders: Dict[int, int] = field(default_factory=dict)

    @property
    def coalesce_rate(self) -> float:
        """Fraction of requests answered without their own render."""
        if self.requests == 0:
            return 0.0
        return 1.0 - self.renders / self.requests


class ServingBatcher:
    """Plan and execute one coalesced serving batch at a time."""

    def __init__(
        self,
        model,
        planner: BatchPlanner,
        render_fn: ForwardRenderFn,
        cull_fn: Callable[[Camera], np.ndarray],
        lod: Optional[LodSelector] = None,
        resilience: Optional[ResilienceConfig] = None,
        fault_injector: Optional[RenderFaultInjector] = None,
    ) -> None:
        self.model = model
        self.planner = planner
        self.render_fn = render_fn
        self.cull_fn = cull_fn
        self.lod = lod
        self.resilience = resilience or ResilienceConfig()
        self.fault_injector = fault_injector
        self.breaker = CircuitBreaker(
            self.resilience.breaker_threshold,
            self.resilience.breaker_cooldown_s,
        )
        self.counters = BatcherCounters()

    # ------------------------------------------------------------------
    def plan_requests(
        self, requests: Sequence[RenderRequest], lod_bump: int = 0
    ):
        """Coalesce ``requests`` by view and plan the distinct views.

        Returns ``(plan, groups, levels)`` where ``groups`` maps view id
        to its request list and ``levels`` maps view id to its LOD level.
        Groups are keyed and planned in sorted view order, so the plan
        fingerprint depends only on batch *membership*, not arrival
        interleaving — identical compositions hit the cache.  A positive
        ``lod_bump`` (overload degradation) coarsens every view by that
        many levels, clamped to the coarsest available.
        """
        groups: Dict[int, List[RenderRequest]] = {}
        for request in sorted(requests, key=lambda r: r.view_id):
            groups.setdefault(request.view_id, []).append(request)
        view_ids = list(groups)
        cameras = [groups[v][0].camera for v in view_ids]
        levels: Dict[int, int] = {}
        sets: List[np.ndarray] = []
        for view_id, camera in zip(view_ids, cameras):
            level = self.lod.level_for(camera) if self.lod else 0
            if lod_bump and self.lod is not None:
                level = min(level + lod_bump, self.lod.num_levels - 1)
            levels[view_id] = level
            in_frustum = self.cull_fn(camera)
            if self.lod is not None:
                in_frustum = self.lod.apply(level, in_frustum)
            sets.append(in_frustum)
        plan = self.planner.plan(
            sets,
            view_ids,
            cameras=cameras,
            num_gaussians=self.model.num_gaussians,
        )
        return plan, groups, levels

    def execute(
        self,
        requests: Sequence[RenderRequest],
        start_s: float,
        batch_id: int,
        lod_bump: int = 0,
    ) -> Tuple[List[RequestRecord], float]:
        """Serve one batch; returns ``(records, completion_clock)``.

        The virtual clock advances by the *measured* plan and render
        seconds; each request completes when its view's render step does,
        so later-ordered steps accumulate more latency — which is why the
        planner's request ordering shows up in the tail percentiles.

        Fault handling per step (see :mod:`repro.serving.resilience`):
        an open circuit breaker fast-fails the view's requests without a
        render; injected transient faults are retried with exponential
        backoff charged to the clock; exhausted retries fail the group
        and feed the breaker.
        """
        t0 = time.perf_counter()
        plan, groups, levels = self.plan_requests(requests, lod_bump)
        plan_s = time.perf_counter() - t0
        clock = start_s + plan_s

        def fail_group(group, level, retries, why_clock):
            for request in group:
                records.append(
                    RequestRecord(
                        request_id=request.request_id,
                        view_id=request.view_id,
                        status=STATUS_FAILED,
                        arrival_s=request.arrival_s,
                        slo_s=request.slo_s,
                        done_s=why_clock,
                        queue_s=start_s - request.arrival_s,
                        plan_s=plan_s,
                        batch_id=batch_id,
                        lod_level=level,
                        retries=retries,
                        degraded=bool(lod_bump),
                    )
                )

        records: List[RequestRecord] = []
        for step in plan.steps:
            group = groups[step.view_id]
            level = levels[step.view_id]
            if not self.breaker.allow(step.view_id, clock):
                fail_group(group, level, 0, clock)
                continue
            attempts = 1 + self.resilience.retry_max
            result = None
            render_s = 0.0
            retries = 0
            for attempt in range(attempts):
                if self.fault_injector is not None and (
                    self.fault_injector.attempt_fails(step.view_id, attempt)
                ):
                    # Failed attempt: charge its backoff to the clock and
                    # (maybe) go around again.
                    clock += self.resilience.retry_backoff_s * 2**attempt
                    retries = attempt + 1
                    continue
                t1 = time.perf_counter()
                sub = self.model.gather(step.working_set)
                result = self.render_fn(group[0].camera, sub)
                render_s = time.perf_counter() - t1
                clock += render_s
                retries = attempt
                break
            if result is None:  # retries exhausted
                self.breaker.record_failure(step.view_id, clock)
                fail_group(group, level, retries, clock)
                continue
            self.breaker.record_success(step.view_id)
            self.counters.renders += 1
            self.counters.lod_level_renders[level] = (
                self.counters.lod_level_renders.get(level, 0) + 1
            )
            for request in group:
                records.append(
                    RequestRecord(
                        request_id=request.request_id,
                        view_id=request.view_id,
                        status=STATUS_DONE,
                        arrival_s=request.arrival_s,
                        slo_s=request.slo_s,
                        done_s=clock,
                        queue_s=start_s - request.arrival_s,
                        plan_s=plan_s,
                        render_s=render_s,
                        batch_id=batch_id,
                        lod_level=level,
                        working_set=int(step.working_set.size),
                        num_rendered=result.num_rendered,
                        retries=retries,
                        degraded=bool(lod_bump),
                    )
                )
        self.counters.batches += 1
        self.counters.requests += len(requests)
        return records, clock

    # ------------------------------------------------------------------
    def render_one(self, request: RenderRequest):
        """Single-request render through the identical cull/LOD/plan path
        (the parity-test entry point; also handy for warmup)."""
        plan, groups, _levels = self.plan_requests([request])
        step = plan.steps[0]
        sub = self.model.gather(step.working_set)
        return self.render_fn(groups[step.view_id][0].camera, sub)
