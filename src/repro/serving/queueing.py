"""Request queue with admission control.

The serving loop is open-loop: arrivals keep coming whether or not the
renderer keeps up.  A bounded FIFO with load shedding is the standard
defence — when the queue is full the request is rejected immediately
(cheap, and the client can retry elsewhere) instead of joining a line it
can only lose.  Optionally, requests whose deadline has already passed by
the time they would start are dropped at dispatch (``drop_expired``):
rendering them would burn capacity on an answer nobody is waiting for.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

from repro.serving.requests import RenderRequest


@dataclass
class QueueStats:
    """Cumulative admission-control counters for one serving run."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0  # rejected at admission: queue full
    expired: int = 0  # dropped at dispatch: deadline already missed
    max_depth: int = 0

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    def as_dict(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "expired": self.expired,
            "max_depth": self.max_depth,
            "shed_rate": self.shed_rate,
        }


class RequestQueue:
    """Bounded FIFO of :class:`RenderRequest` with capacity shedding."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = int(capacity)
        self._items: Deque[RenderRequest] = deque()
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, request: RenderRequest) -> bool:
        """Admit ``request`` or shed it; returns ``True`` when admitted."""
        self.stats.offered += 1
        if len(self._items) >= self.capacity:
            self.stats.shed += 1
            return False
        self._items.append(request)
        self.stats.admitted += 1
        self.stats.max_depth = max(self.stats.max_depth, len(self._items))
        return True

    def pop_batch(
        self,
        max_batch: int,
        now: float = 0.0,
        drop_expired: bool = False,
    ) -> Tuple[List[RenderRequest], List[RenderRequest]]:
        """Dequeue up to ``max_batch`` requests for one serving batch.

        Returns ``(batch, expired)``: with ``drop_expired`` on, requests
        whose deadline precedes ``now`` are pulled off but not served (they
        do not count against ``max_batch`` — the batch is filled from the
        still-viable head of the queue).
        """
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        batch: List[RenderRequest] = []
        expired: List[RenderRequest] = []
        while self._items and len(batch) < max_batch:
            request = self._items.popleft()
            if drop_expired and request.deadline_s < now:
                self.stats.expired += 1
                expired.append(request)
                continue
            batch.append(request)
        return batch, expired
