"""`ServingSession` — the render-serving facade (ROADMAP item 3).

One session owns the served model, a grid-accelerated culler, an optional
:class:`~repro.serving.lod.LodSelector`, a :class:`repro.planning.BatchPlanner`
with its fingerprint-keyed plan cache, the admission-controlled
:class:`~repro.serving.queueing.RequestQueue`, and the
:class:`~repro.serving.batcher.ServingBatcher`.  ``serve(requests)`` runs
a whole arrival stream through the loop and returns a
:class:`~repro.serving.metrics.ServingReport`::

    from repro import serving

    sess = serving.ServingSession.from_engine(engine)
    stream = serving.trajectory_stream(cameras, 200, rate_rps=400, seed=0)
    report = sess.serve(stream)
    print(report.p99_ms, report.plan_cache_hit_rate)

Time model: arrivals live on a *virtual* clock (the stream's seeded
arrival process); service advances that clock by the **measured** wall
seconds of each plan/render call.  Request latency is therefore real
compute time plus queueing delay, deterministic in structure (batch
compositions, cache hits, LOD levels) with measured durations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from dataclasses import replace as dc_replace
from typing import List, Optional, Sequence

import numpy as np

from repro.gaussians.model import GaussianModel
from repro.gaussians.rasterizer import RasterSettings
from repro.gaussians.spatial import CullingGrid
from repro.planning.planner import BatchPlanner
from repro.serving.batcher import ForwardRenderFn, ServingBatcher
from repro.serving.lod import LodConfig, LodSelector
from repro.serving.metrics import (
    STATUS_EXPIRED,
    STATUS_SHED,
    RequestRecord,
    ServingReport,
)
from repro.serving.queueing import RequestQueue
from repro.serving.requests import RenderRequest
from repro.serving.resilience import (
    DegradationController,
    RenderFaultInjector,
    ResilienceConfig,
)


@dataclass
class ServingConfig:
    """Knobs of the serving loop.

    ``ordering`` is the request-batch ordering strategy (Table 4 applied
    to requests; ``tsp`` maximizes consecutive working-set overlap);
    ``plan_cache_size`` bounds the serving plan cache — serving hammers it
    far harder than training (every batch is forward-only and recurring),
    so the default is generous compared to the trainer's 8.  ``lod=None``
    disables level-of-detail culling; ``drop_expired`` drops requests
    whose deadline already passed at dispatch time.  ``resilience``
    configures retry/breaker/degraded-mode fault handling (see
    :mod:`repro.serving.resilience`); ``fault_injector`` plugs in a
    seeded transient-render-fault source for chaos runs.
    """

    max_batch: int = 4
    queue_capacity: int = 32
    ordering: str = "tsp"
    plan_cache_size: int = 64
    drop_expired: bool = False
    lod: Optional[LodConfig] = LodConfig()
    seed: int = 0
    resilience: Optional[ResilienceConfig] = None
    fault_injector: Optional[RenderFaultInjector] = None


def forward_only_settings(settings: RasterSettings) -> RasterSettings:
    """Serving renders never run a backward pass, so the blend-state cache
    is forced off — no retained blending state, no gradient buffers (the
    :mod:`repro.core.memory_model` serving note)."""
    if settings.cache_blend_state:
        settings = dc_replace(settings, cache_blend_state=False)
    return settings


class ServingSession:
    """Serve concurrent render-request streams against one static model."""

    def __init__(
        self,
        model: GaussianModel,
        config: Optional[ServingConfig] = None,
        *,
        render_fn: Optional[ForwardRenderFn] = None,
        settings: Optional[RasterSettings] = None,
        grid_cells_per_axis: int = 16,
    ) -> None:
        self.model = model
        self.config = config or ServingConfig()
        if render_fn is None:
            # Standalone path: the library renderer with forward-only
            # settings.  Engine-backed sessions pass
            # ``engine.render_forward`` instead (the shared EngineBase
            # path), which applies the same cache_blend_state=False rule.
            from repro.gaussians.render import render

            resolved = forward_only_settings(settings or RasterSettings())

            def render_fn(camera, model_like, _s=resolved):
                return render(camera, model_like, _s)

        self.grid = CullingGrid(
            model.positions,
            model.log_scales,
            model.quaternions,
            target_cells_per_axis=grid_cells_per_axis,
        )
        self.lod = (
            LodSelector(model.positions, model.log_scales, self.config.lod)
            if self.config.lod is not None
            else None
        )
        self.planner = BatchPlanner(
            ordering=self.config.ordering,
            enable_cache=True,
            cache_size=self.config.plan_cache_size,
            seed=self.config.seed,
        )
        self.batcher = ServingBatcher(
            model,
            self.planner,
            render_fn,
            cull_fn=self.grid.query,
            lod=self.lod,
            resilience=self.config.resilience,
            fault_injector=self.config.fault_injector,
        )

    @classmethod
    def from_engine(
        cls, engine, config: Optional[ServingConfig] = None
    ) -> "ServingSession":
        """Serve an engine's model through its own forward path.

        The model is snapshotted once (serving is read-only; training may
        resume afterwards) and renders go through
        :meth:`repro.engines.base.EngineBase.render_forward`, so serving
        and training share one renderer resolution and one forward-only
        settings rule.
        """
        return cls(
            engine.snapshot_model(), config, render_fn=engine.render_forward
        )

    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[RenderRequest]) -> ServingReport:
        """Run one arrival stream to completion and report."""
        wall_start = time.perf_counter()
        cfg = self.config
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        queue = RequestQueue(cfg.queue_capacity)
        records: List[RequestRecord] = []
        clock = pending[0].arrival_s if pending else 0.0
        first_arrival = clock
        i = 0
        batch_id = 0
        controller = DegradationController(self.batcher.resilience)
        while i < len(pending) or len(queue):
            if len(queue) == 0:
                # Idle server: jump to the next arrival.
                clock = max(clock, pending[i].arrival_s)
            while i < len(pending) and pending[i].arrival_s <= clock:
                request = pending[i]
                if not queue.offer(request):
                    records.append(
                        RequestRecord(
                            request_id=request.request_id,
                            view_id=request.view_id,
                            status=STATUS_SHED,
                            arrival_s=request.arrival_s,
                            slo_s=request.slo_s,
                            done_s=request.arrival_s,
                        )
                    )
                i += 1
            batch, expired = queue.pop_batch(
                cfg.max_batch, now=clock, drop_expired=cfg.drop_expired
            )
            for request in expired:
                records.append(
                    RequestRecord(
                        request_id=request.request_id,
                        view_id=request.view_id,
                        status=STATUS_EXPIRED,
                        arrival_s=request.arrival_s,
                        slo_s=request.slo_s,
                        done_s=clock,
                        queue_s=clock - request.arrival_s,
                    )
                )
            if not batch:
                continue
            # Degradation reacts to the *post-dispatch* backlog: what is
            # still queued after this batch was carved off.
            lod_bump = controller.update(len(queue), cfg.queue_capacity)
            if lod_bump:
                controller.degraded_batches += 1
            batch_records, clock = self.batcher.execute(
                batch, clock, batch_id, lod_bump=lod_bump
            )
            records.extend(batch_records)
            batch_id += 1

        records.sort(key=lambda r: r.request_id)
        injector = self.config.fault_injector
        resilience_stats = {
            "injected_faults": injector.injected if injector else 0,
            "breaker_trips": self.batcher.breaker.stats.trips,
            "breaker_fast_fails": self.batcher.breaker.stats.fast_fails,
            "degraded_batches": controller.degraded_batches,
        }
        return ServingReport(
            records=records,
            planner_stats=self.planner.stats(),
            queue_stats=queue.stats.as_dict(),
            sim_time_s=max(clock - first_arrival, 0.0),
            wall_time_s=time.perf_counter() - wall_start,
            lod_subset_sizes=(
                self.lod.subset_sizes() if self.lod is not None else {}
            ),
            resilience_stats=resilience_stats,
        )

    # ------------------------------------------------------------------
    def render_request(self, request: RenderRequest):
        """Render one request immediately (no queueing) through the same
        cull/LOD/plan/render path ``serve`` uses; returns the
        ``RenderResult``."""
        return self.batcher.render_one(request)

    def mean_composited(
        self, cameras, *, use_lod: bool = True
    ) -> float:
        """Mean composited-Gaussian count over ``cameras`` — the LOD
        ablation metric (compare ``use_lod`` on vs off)."""
        sizes = []
        for cam in cameras:
            s = self.grid.query(cam)
            if use_lod and self.lod is not None:
                s = self.lod.apply(self.lod.level_for(cam), s)
            sizes.append(s.size)
        return float(np.mean(sizes)) if sizes else 0.0
