"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro.cli sparsity --scene bigcity
    python -m repro.cli max-size --scene bigcity --testbed rtx4090
    python -m repro.cli throughput --scene rubble --system clm --n 30.4e6
    python -m repro.cli comm-volume --scene ithaca --ordering tsp
    python -m repro.cli engines
    python -m repro.cli backends
    python -m repro.cli train --engine clm --batches 20
    python -m repro.cli train --engine clm --kernel-backend numba
    python -m repro.cli train --engine clm --ordering gs_count --plan-cache 16
    python -m repro.cli serve --stream trajectory --requests 96 --rate 500
    python -m repro.cli bench list
    python -m repro.cli bench run --quick
    python -m repro.cli bench compare --baseline BENCH_results.json

Every subcommand prints a small table; `--scale`/`--views` control the
synthetic-scene fidelity (see DESIGN.md §5).  Functional-training engines
are resolved through the registry (`repro engines` lists them), so a newly
registered engine shows up in `train --engine` with no CLI change; the
`bench` group drives the benchmark registry the same way (`repro bench
list` shows whatever the benchmarks directory registers).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.analysis.sparsity import sparsity_summary
from repro.core import memory_model as mm
from repro.core.config import TimingConfig
from repro.core.culling_index import CullingIndex
from repro.core.timed import SYSTEM_NAMES, communication_volume_per_batch, run_timed
from repro.planning.orders import STRATEGIES
from repro.engines import available_engines, engine_descriptions
from repro.hardware.specs import TESTBEDS
from repro.scenes.datasets import build_scene, scene_names
from repro.serving import requests as serving_requests


def _add_scene_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scene", choices=scene_names(), default="bigcity")
    p.add_argument("--scale", type=float, default=2e-4,
                   help="fraction of the paper Gaussian count to synthesize")
    p.add_argument("--views", type=int, default=192)
    p.add_argument("--seed", type=int, default=1)


def _scene_and_index(args):
    scene = build_scene(args.scene, scale=args.scale, num_views=args.views,
                        seed=args.seed)
    return scene, CullingIndex.build(scene.model, scene.cameras)


def cmd_sparsity(args) -> int:
    scene, index = _scene_and_index(args)
    s = sparsity_summary(index)
    print(format_table(
        ["metric", "value %"],
        [[k, 100 * v] for k, v in s.items()],
        title=f"Per-view sparsity rho — {args.scene} "
              f"({scene.num_gaussians} Gaussians, {len(scene.cameras)} views)",
        floatfmt="{:.3f}",
    ))
    return 0


def cmd_max_size(args) -> int:
    scene, index = _scene_and_index(args)
    profile = mm.profile_from_scene(scene, index)
    testbed = TESTBEDS[args.testbed]
    rows = [
        [system, mm.max_model_size(system, testbed, profile) / 1e6]
        for system in mm.SYSTEMS
    ]
    print(format_table(
        ["system", "max N (millions)"], rows,
        title=f"Max trainable model size — {args.scene} on {testbed.name}",
        floatfmt="{:.1f}",
    ))
    return 0


def cmd_throughput(args) -> int:
    scene, index = _scene_and_index(args)
    cfg = TimingConfig(
        testbed=TESTBEDS[args.testbed],
        paper_num_gaussians=args.n,
        num_batches=args.batches,
        batch_size=args.batch_size,
        ordering=args.ordering,
        seed=args.seed,
    )
    res = run_timed(args.system, scene, index, cfg)
    d = res.decomposition
    rows = [
        ["images/s", res.images_per_second],
        ["CPU->GPU GB/batch", res.load_bytes_per_batch / 1e9],
        ["GPU->CPU GB/batch", res.store_bytes_per_batch / 1e9],
        ["Adam trailing ms", res.adam_trailing_s * 1e3],
        ["GPU compute busy s", d["compute_busy"]],
        ["comm busy s", d["comm_busy"]],
    ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.system} — {args.scene} at N={args.n/1e6:.1f}M on "
              f"{cfg.testbed.name}",
        floatfmt="{:.3f}",
    ))
    return 0


def cmd_comm_volume(args) -> int:
    scene, index = _scene_and_index(args)
    rows = []
    for ordering in STRATEGIES:
        cfg = TimingConfig(
            testbed=TESTBEDS[args.testbed], paper_num_gaussians=args.n,
            num_batches=args.batches, batch_size=args.batch_size,
            ordering=ordering, seed=args.seed,
        )
        volume = communication_volume_per_batch(scene, index, cfg)
        rows.append([ordering, volume / 1e9])
    print(format_table(
        ["ordering", "GB/batch"], rows,
        title=f"CPU->GPU volume — {args.scene} at N={args.n/1e6:.1f}M",
        floatfmt="{:.3f}",
    ))
    return 0


def cmd_engines(args) -> int:
    rows = [[name, desc] for name, desc in engine_descriptions().items()]
    print(format_table(
        ["engine", "description"], rows,
        title="Registered training engines (repro train --engine NAME)",
    ))
    return 0


def cmd_backends(args) -> int:
    from repro.kernels import backend_status, resolve_backend_name

    rows = [
        [
            s["name"],
            "yes" if s["available"] else "no",
            s["version"] or "-",
            s["priority"],
            s["description"],
        ]
        for s in backend_status()
    ]
    print(format_table(
        ["backend", "available", "version", "priority", "description"],
        rows,
        title="Registered kernel backends "
              "(repro train --kernel-backend NAME)",
    ))
    print(f"auto resolves to: {resolve_backend_name(None)}")
    return 0


def cmd_train(args) -> int:
    from repro import session
    from repro.core.config import EngineConfig
    from repro.core.trainer import TrainerConfig
    from repro.scenes.images import make_trainable_scene

    scene = make_trainable_scene(
        reference_gaussians=args.gaussians, num_views=12,
        image_size=(32, 24), seed=args.seed,
    )
    # Unknown engine names never reach this point: the --engine choices
    # come from available_engines(), so argparse rejects them with the
    # registry's name list.
    engine = args.engine
    if args.devices > 1 and engine == "clm":
        # --devices implies the sharded engine; plain clm has no device
        # dimension.
        engine = "clm_sharded"
    fault_schedule = None
    if args.fail_at is not None:
        if args.devices < 2:
            raise SystemExit(
                "repro train: --fail-at needs --devices >= 2 "
                "(a fail-stop must leave survivors to recover onto)"
            )
        from repro.resilience import FaultEvent, FaultSchedule

        fault_schedule = FaultSchedule(
            events=(FaultEvent.fail_stop(args.fail_at, args.fail_device),)
        )
    sess = session(
        scene,
        engine=engine,
        config=EngineConfig(
            batch_size=4,
            seed=args.seed,
            ordering=args.ordering,
            plan_cache_size=args.plan_cache,
            overlap_workers=args.overlap_workers,
            num_devices=args.devices,
            kernel_backend=args.kernel_backend,
            fault_schedule=fault_schedule,
            use_task_graph=getattr(args, "task_graph", False),
            autotune=getattr(args, "autotune", False),
        ),
        trainer_config=TrainerConfig(
            num_batches=args.batches, batch_size=4,
            eval_every=max(1, args.batches // 4), seed=args.seed,
        ),
    )
    sess.train()
    rows = [[b, p] for b, p in
            zip(sess.metrics.eval_batches, sess.metrics.psnrs)]
    print(format_table(
        ["batch", "PSNR dB"], rows,
        title=f"Functional training with the {engine} engine "
              f"(ordering={args.ordering}, "
              f"kernels={sess.engine.kernel_backend})",
        floatfmt="{:.2f}",
    ))
    stats = sess.planner.stats()
    print(
        f"planner: {stats['plans_built']:.0f} plans built, "
        f"{stats['cache_hits']:.0f} cache hits "
        f"({100 * stats['hit_rate']:.0f}% of {stats['requests']:.0f} "
        f"requests), {stats['build_time_s'] * 1e3:.1f} ms planning"
    )
    perf = sess.perf
    print(
        f"runtime: {perf.adam_s * 1e3:.1f} ms Adam across "
        f"{perf.batches} batches, {perf.overlap_hidden_s * 1e3:.1f} ms "
        f"hidden under compute ({args.overlap_workers} overlap workers)"
    )
    if perf.device_busy_s:
        busy = ", ".join(
            f"gpu{k}={s * 1e3:.1f}ms"
            for k, s in sorted(perf.device_busy_s.items())
        )
        print(
            f"sharding: {args.devices} devices, "
            f"{perf.halo_gaussians} halo Gaussians "
            f"({perf.halo_bytes / 1e6:.2f} MB exchanged), "
            f"{perf.stolen_microbatches} microbatches stolen; "
            f"simulated makespan {perf.sim_makespan_s * 1e3:.1f} ms, "
            f"busy {busy}"
        )
    if perf.failed_devices:
        print(
            f"resilience: {perf.failed_devices} device(s) failed, "
            f"{perf.lost_batches} batch(es) lost, recovered in "
            f"{perf.recovery_s * 1e3:.1f} ms onto "
            f"{len(sess.engine.alive)} survivors"
        )
    if sess.tuner is not None:
        summary = sess.tuner.summary()
        chosen = summary["most_chosen"] or {}
        print(
            f"autotune: {summary['batches']} batches tuned over "
            f"{summary['candidates']} candidates "
            f"({summary['explored_batches']} exploration probes), "
            f"mean |pred-meas|/meas = {100 * summary['mean_rel_error']:.1f}%; "
            f"most chosen: workers={chosen.get('overlap_workers')}, "
            f"group_size={chosen.get('group_size')}, "
            f"ordering={chosen.get('ordering')}"
        )
    return 0


def cmd_serve(args) -> int:
    import numpy as np

    from repro.core.config import EngineConfig
    from repro.engines import create_engine
    from repro.scenes.images import make_trainable_scene
    from repro.serving import (
        LodConfig,
        RenderFaultInjector,
        ResilienceConfig,
        ServingConfig,
        ServingSession,
        build_stream,
        ring_cameras,
    )

    scene = make_trainable_scene(
        reference_gaussians=args.gaussians, num_views=8,
        image_size=(32, 24), seed=args.seed,
    )
    engine = create_engine(
        args.engine, scene.reference, scene.cameras,
        EngineConfig(batch_size=4, seed=args.seed),
    )
    sess = ServingSession.from_engine(engine, ServingConfig(
        max_batch=args.max_batch,
        queue_capacity=args.queue_capacity,
        ordering=args.ordering,
        plan_cache_size=args.plan_cache,
        drop_expired=args.drop_expired,
        lod=None if args.no_lod else LodConfig(),
        seed=args.seed,
        fault_injector=(
            RenderFaultInjector(fault_rate=args.fault_rate,
                                seed=args.fault_seed)
            if args.fault_rate > 0 else None
        ),
        resilience=(
            ResilienceConfig(enable_degrade=args.degrade)
            if args.fault_rate > 0 or args.degrade else None
        ),
    ))
    # Ring radii scale with the cloud's bounding radius so the near ring
    # exercises full detail and the far ring the LOD-culled path on any
    # scene size.
    model = sess.model
    centroid = model.positions.mean(axis=0)
    bound = max(
        float(np.linalg.norm(model.positions - centroid, axis=1).max()),
        1e-9,
    )
    cams = ring_cameras(
        views_per_ring=4,
        radii=tuple(bound * r for r in (1.3, 4.0, 9.0)),
        center=centroid,
    )
    stream = build_stream(
        args.stream, cams, args.requests, args.rate,
        slo_s=args.slo_ms / 1e3, seed=args.seed,
    )
    report = sess.serve(stream)
    print(format_table(
        ["metric", "value"], report.summary_rows(),
        title=f"repro serve — {args.stream} stream of {args.requests} "
              f"requests over {len(cams)} views ({args.engine} engine, "
              f"{model.num_gaussians} Gaussians)",
        floatfmt="{:.2f}",
    ))
    stats = report.planner_stats
    print(
        f"planner: {stats['plans_built']:.0f} plans built, "
        f"{stats['cache_hits']:.0f} cache hits "
        f"({100 * stats['hit_rate']:.0f}% of {stats['requests']:.0f} "
        f"batches), {stats['evictions']:.0f} evictions"
    )
    if report.lod_subset_sizes:
        levels = ", ".join(
            f"L{level}={size}"
            for level, size in report.lod_subset_sizes.items()
        )
        served = ", ".join(
            f"L{level}:{count}"
            for level, count in report.lod_level_counts().items()
        )
        print(f"lod: subset sizes {levels}; served per level {served}")
    return 0


def _bench_tier(args) -> str:
    if getattr(args, "full", False):
        return "full"
    if getattr(args, "quick", False):
        return "quick"
    return args.tier


def cmd_bench_list(args) -> int:
    from repro.bench import discover_benchmarks, benchmark_entries

    discover_benchmarks(args.dir)
    rows = [
        [e.name, e.figure or "-", ",".join(e.tags) or "-", e.description]
        for e in benchmark_entries()
    ]
    print(format_table(
        ["benchmark", "figure", "tags", "description"], rows,
        title="Registered benchmarks (repro bench run --only NAME)",
    ))
    return 0


def cmd_bench_run(args) -> int:
    from repro.analysis.reporting import ResultsLog
    from repro.bench import (
        BenchRunner,
        UnknownBenchmarkError,
        discover_benchmarks,
        dump_results,
        results_document,
        validate_results,
    )

    discover_benchmarks(args.dir)
    tier = _bench_tier(args)
    runner = BenchRunner(
        tier=tier,
        seed=args.seed,
        quiet=args.quiet,
        results_log=None if args.no_log else ResultsLog(),
    )
    try:
        report = runner.run(only=args.only or None)
    except UnknownBenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    summary = {}
    for record in report.records:
        stats = summary.setdefault(record.benchmark, [0, 0.0])
        stats[0] += 1
        stats[1] = max(stats[1], record.wall_time_s)
    rows = [[name, count, wall] for name, (count, wall) in summary.items()]
    print(format_table(
        ["benchmark", "records", "wall s"], rows,
        title=f"bench run — tier={tier} seed={args.seed} "
              f"rev={report.git_rev} ({report.wall_time_s:.1f}s total)",
        floatfmt="{:.2f}",
    ))

    doc = results_document(report.records, tier=tier,
                           git_rev=report.git_rev)
    errors = validate_results(doc)
    for err in errors:
        print(f"SCHEMA ERROR: {err}", file=sys.stderr)
    dump_results(args.output, doc)
    print(f"wrote {len(report.records)} records to {args.output}")

    for failure in report.failures:
        print(f"\nFAILED {failure.benchmark}: {failure.error}",
              file=sys.stderr)
        print(failure.trace, file=sys.stderr)
    return 0 if (report.ok and not errors) else 1


def cmd_bench_compare(args) -> int:
    from repro.bench import (
        CompareThresholds,
        compare_results,
        load_results,
    )

    current = load_results(args.current)
    baseline = load_results(args.baseline)
    thresholds = CompareThresholds(
        throughput_drop=args.threshold,
        transfer_increase=args.transfer_threshold,
        psnr_drop_db=args.psnr_threshold,
        wall_time_increase=args.wall_threshold,
    )
    report = compare_results(
        current, baseline, thresholds,
        fail_on_wall_time=args.fail_on_wall_time,
    )
    for err in report.schema_errors:
        print(f"SCHEMA ERROR: {err}", file=sys.stderr)
    for delta in report.regressions:
        print(f"REGRESSION: {delta.describe()}")
    for delta in report.warnings:
        print(f"warning: {delta.describe()}")
    for delta in report.improvements:
        print(f"improvement: {delta.describe()}")
    print(
        f"compared {report.matched} records "
        f"({len(report.regressions)} regressions, "
        f"{len(report.warnings)} warnings, "
        f"{len(report.improvements)} improvements; "
        f"{len(report.only_in_baseline)} baseline-only, "
        f"{len(report.only_in_current)} current-only)"
    )
    return 0 if report.ok else 1


def cmd_bench_validate(args) -> int:
    from repro.bench import load_results, validate_results

    doc = load_results(args.path)
    errors = validate_results(doc)
    for err in errors:
        print(f"SCHEMA ERROR: {err}", file=sys.stderr)
    if not errors:
        print(
            f"{args.path}: {len(doc['records'])} schema-valid records "
            f"(tier={doc['tier']}, rev={doc['git_rev']})"
        )
    return 0 if not errors else 1


def _add_bench_parser(sub) -> None:
    p = sub.add_parser("bench", help="benchmark orchestration (repro.bench)")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    lp = bench_sub.add_parser("list", help="list registered benchmarks")
    lp.add_argument("--dir", default=None,
                    help="benchmarks directory (default: auto-detect)")
    lp.set_defaults(func=cmd_bench_list)

    rp = bench_sub.add_parser("run", help="run benchmarks, write records")
    rp.add_argument("--dir", default=None,
                    help="benchmarks directory (default: auto-detect)")
    rp.add_argument("--tier", choices=("quick", "full"), default="quick")
    rp.add_argument("--quick", action="store_true",
                    help="shorthand for --tier quick (the CI smoke tier)")
    rp.add_argument("--full", action="store_true",
                    help="shorthand for --tier full (paper-shape scale)")
    rp.add_argument("--only", nargs="*", default=None,
                    help="run only these benchmarks (exact names or "
                         "substrings, e.g. --only raster or --only fig)")
    rp.add_argument("--output", default="BENCH_results.json")
    rp.add_argument("--seed", type=int, default=0)
    rp.add_argument("--quiet", action="store_true",
                    help="suppress the per-benchmark tables")
    rp.add_argument("--no-log", action="store_true",
                    help="skip appending to results/experiments.jsonl")
    rp.set_defaults(func=cmd_bench_run)

    cp = bench_sub.add_parser("compare",
                              help="gate a run against a baseline")
    cp.add_argument("--baseline", required=True,
                    help="baseline BENCH_results.json")
    cp.add_argument("--current", default="BENCH_results.json")
    cp.add_argument("--threshold", type=float, default=0.20,
                    help="relative images/s drop that fails (default 0.20)")
    cp.add_argument("--transfer-threshold", type=float, default=0.20,
                    help="relative transfer-bytes growth that fails "
                         "(default 0.20)")
    cp.add_argument("--psnr-threshold", type=float, default=0.5,
                    help="absolute PSNR dB drop that fails (default 0.5)")
    cp.add_argument("--wall-threshold", type=float, default=0.5,
                    help="relative wall-time growth that warns (default 0.5)")
    cp.add_argument("--fail-on-wall-time", action="store_true",
                    help="treat wall-time growth as a failure, not a warning")
    cp.set_defaults(func=cmd_bench_compare)

    vp = bench_sub.add_parser("validate",
                              help="schema-check a BENCH_results.json")
    vp.add_argument("path", nargs="?", default="BENCH_results.json")
    vp.set_defaults(func=cmd_bench_validate)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CLM reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sparsity", help="per-view sparsity statistics")
    _add_scene_args(p)
    p.set_defaults(func=cmd_sparsity)

    p = sub.add_parser("max-size", help="Figure 8-style max model sizes")
    _add_scene_args(p)
    p.add_argument("--testbed", choices=sorted(TESTBEDS), default="rtx4090")
    p.set_defaults(func=cmd_max_size)

    p = sub.add_parser("throughput", help="simulated training throughput")
    _add_scene_args(p)
    p.add_argument("--system", choices=SYSTEM_NAMES, default="clm")
    p.add_argument("--testbed", choices=sorted(TESTBEDS), default="rtx4090")
    p.add_argument("--n", type=float, default=15.3e6,
                   help="paper-scale Gaussian count")
    p.add_argument("--batches", type=int, default=6)
    p.add_argument("--batch-size", type=int, default=None,
                   help="microbatches per batch (default: the scene's "
                        "paper batch size)")
    p.add_argument("--ordering", choices=STRATEGIES, default="tsp")
    p.set_defaults(func=cmd_throughput)

    p = sub.add_parser("comm-volume", help="Figure 14-style volumes")
    _add_scene_args(p)
    p.add_argument("--testbed", choices=sorted(TESTBEDS), default="rtx4090")
    p.add_argument("--n", type=float, default=15.3e6)
    p.add_argument("--batches", type=int, default=6)
    p.add_argument("--batch-size", type=int, default=None)
    p.set_defaults(func=cmd_comm_volume)

    p = sub.add_parser("engines", help="list registered training engines")
    p.set_defaults(func=cmd_engines)

    p = sub.add_parser("backends",
                       help="list registered kernel backends")
    p.set_defaults(func=cmd_backends)

    p = sub.add_parser("train", help="functional training demo")
    p.add_argument("--engine", "--system", dest="engine",
                   choices=available_engines(), default="clm",
                   help="training engine, from the registry "
                        "(see `repro engines`)")
    p.add_argument("--batches", type=int, default=16)
    p.add_argument("--gaussians", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ordering", choices=STRATEGIES, default="tsp",
                   help="microbatch ordering strategy (Table 4)")
    p.add_argument("--plan-cache", type=int, default=8,
                   help="BatchPlan cache capacity (0 disables memoization)")
    p.add_argument("--overlap-workers", type=int, default=0,
                   help="overlap-runtime worker threads for the CPU Adam "
                        "(0 = synchronous fallback; results are "
                        "bit-identical at any setting)")
    p.add_argument("--devices", type=int, default=1,
                   help="simulated device count; >1 switches clm to the "
                        "clm_sharded engine (spatial shards, halo "
                        "exchange, work stealing)")
    p.add_argument("--kernel-backend", default="auto",
                   help="compiled kernel backend for the raster/Adam hot "
                        "loops (see `repro backends`; 'auto' picks the "
                        "fastest available)")
    p.add_argument("--fail-at", type=int, default=None, metavar="BATCH",
                   help="inject a fail-stop at this batch index "
                        "(requires --devices >= 2; the run recovers by "
                        "re-sharding onto the survivors)")
    p.add_argument("--fail-device", type=int, default=1, metavar="DEV",
                   help="device that fail-stops at --fail-at (default 1)")
    p.add_argument("--task-graph", action="store_true",
                   help="execute batches through the dependency task-graph "
                        "executor instead of the submit/barrier loop "
                        "(bit-identical results)")
    p.add_argument("--autotune", action="store_true",
                   help="plan-guided adaptive runtime: per batch, predict "
                        "every candidate config's makespan through the "
                        "simulator, run the argmin, reconcile prediction "
                        "vs measurement back into the cost model")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("serve", help="concurrent render-serving demo")
    p.add_argument("--engine", choices=available_engines(), default="clm",
                   help="engine whose forward path serves the renders")
    p.add_argument("--gaussians", type=int, default=200)
    p.add_argument("--requests", type=int, default=96)
    p.add_argument("--stream", choices=serving_requests.STREAMS,
                   default="trajectory",
                   help="arrival process (trajectory = locality tour)")
    p.add_argument("--rate", type=float, default=500.0,
                   help="mean arrival rate, requests/s")
    p.add_argument("--slo-ms", type=float, default=250.0,
                   help="per-request latency SLO in milliseconds")
    p.add_argument("--max-batch", type=int, default=4)
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="admission-control queue bound (excess sheds)")
    p.add_argument("--plan-cache", type=int, default=64)
    p.add_argument("--ordering", choices=STRATEGIES, default="tsp")
    p.add_argument("--drop-expired", action="store_true",
                   help="drop requests whose deadline passed at dispatch")
    p.add_argument("--no-lod", action="store_true",
                   help="disable level-of-detail culling")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="probability a render attempt faults "
                        "transiently (0 disables injection; faults are "
                        "absorbed by retry-with-backoff and a per-view "
                        "circuit breaker)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for the render fault injector")
    p.add_argument("--degrade", action="store_true",
                   help="enable queue-watermark degraded mode (coarser "
                        "LOD under backlog)")
    p.set_defaults(func=cmd_serve)

    _add_bench_parser(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
