"""Synthetic dataset substrate.

The paper evaluates on five posed-image datasets (Table 3) that are not
redistributable and total hundreds of GB.  This subpackage builds synthetic
equivalents whose *geometry* matches each dataset's topology — because the
properties CLM exploits (per-view sparsity rho, inter-view overlap, spatial
locality) are geometric consequences of camera trajectory vs scene extent:

=========  ==========  =======================  =====================
scene      type        cloud generator          trajectory
=========  ==========  =======================  =====================
bicycle    yard        dense central cluster    inward-facing orbit
rubble     aerial      terrain + rubble piles   serpentine survey grid
alameda    indoor      rooms/walls/furniture    room-to-room walk
ithaca     street      road-corridor strips     forward-facing drive
bigcity    aerial      city blocks, 25 km^2     high-altitude grid
=========  ==========  =======================  =====================

Gaussian counts are scaled down by ``scale`` (default 1/1000); rho and
overlap statistics are scale-invariant, so the performance experiments
up-scale the measured index-set sizes back to paper-scale N (DESIGN.md §5).
"""

from repro.scenes.datasets import (
    SceneSpec,
    Scene,
    SCENE_SPECS,
    get_scene_spec,
    build_scene,
    scene_names,
)
from repro.scenes.trajectories import (
    orbit_trajectory,
    aerial_grid_trajectory,
    street_trajectory,
    indoor_walkthrough_trajectory,
)

__all__ = [
    "SceneSpec",
    "Scene",
    "SCENE_SPECS",
    "get_scene_spec",
    "build_scene",
    "scene_names",
    "orbit_trajectory",
    "aerial_grid_trajectory",
    "street_trajectory",
    "indoor_walkthrough_trajectory",
]
