"""Ground-truth image synthesis for trainable scenes.

Figure 9 (reconstruction quality vs model size) needs *real* training:
posed images of a scene richer than the models being fitted.  We create a
high-detail reference :class:`GaussianModel` ("the world"), render the
training views from it, and let trainers fit fresh models of varying sizes
to those images — the offline analogue of photographing a real scene.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.rasterizer import RasterSettings
from repro.gaussians.render import render
from repro.scenes.pointcloud import sfm_like_cloud
from repro.scenes.synthetic import yard_cloud
from repro.scenes.trajectories import orbit_trajectory
from repro.utils.rng import SeedLike, make_rng


@dataclass
class TrainableScene:
    """Posed images plus an SfM-like initialization cloud."""

    cameras: List[Camera]
    images: List[np.ndarray]
    init_points: np.ndarray
    init_colors: np.ndarray
    reference: GaussianModel

    @property
    def num_views(self) -> int:
        return len(self.cameras)


def make_trainable_scene(
    reference_gaussians: int = 400,
    num_views: int = 24,
    image_size: Tuple[int, int] = (48, 36),
    extent: float = 1.0,
    sh_degree: int = 1,
    init_fraction: float = 0.3,
    seed: SeedLike = 0,
    settings: Optional[RasterSettings] = None,
) -> TrainableScene:
    """Build a small yard-style scene with rendered ground-truth images."""
    rng = make_rng(seed)
    positions, colors = yard_cloud(reference_gaussians, extent=extent, seed=rng)
    reference = GaussianModel.from_point_cloud(
        positions, colors=colors, sh_degree=sh_degree, initial_opacity=0.8, seed=rng
    )
    # Give the reference some shape/colour variety so there is structure
    # worth fitting.
    reference.log_scales += rng.uniform(-0.3, 0.6, size=reference.log_scales.shape)
    if reference.sh.shape[1] > 1:
        reference.sh[:, 1:, :] += 0.15 * rng.normal(
            size=reference.sh[:, 1:, :].shape
        )
    cameras = orbit_trajectory(
        num_views,
        radius=2.2 * extent,
        height=0.9 * extent,
        width=image_size[0],
        height_px=image_size[1],
        seed=rng,
    )
    settings = settings or RasterSettings(background=(0.08, 0.08, 0.08))
    images = [render(cam, reference, settings).image for cam in cameras]
    init_points, init_colors = sfm_like_cloud(
        positions, colors, keep_fraction=init_fraction, noise_scale=0.02, seed=rng
    )
    return TrainableScene(
        cameras=cameras,
        images=images,
        init_points=init_points,
        init_colors=init_colors,
        reference=reference,
    )
