"""Point-cloud initialization (COLMAP substitute).

The paper initializes Gaussians from a COLMAP structure-from-motion point
cloud (§2.1); Ithaca365 even required running COLMAP to get poses at all
(Appendix A.2).  Offline we substitute a *noisy subsample of the ground
truth*: exactly the property an SfM cloud has — sparse, roughly on-surface
points with localization error — which is what the densification process
then refines.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, make_rng


def sfm_like_cloud(
    surface_points: np.ndarray,
    surface_colors: np.ndarray,
    keep_fraction: float = 0.3,
    noise_scale: float = 0.01,
    color_noise: float = 0.05,
    seed: SeedLike = 0,
) -> "tuple[np.ndarray, np.ndarray]":
    """Subsample + perturb a dense surface cloud into an SfM-like seed.

    Parameters
    ----------
    keep_fraction:
        Fraction of surface points an SfM pipeline would triangulate.
    noise_scale:
        Positional error, in the same units as ``surface_points``.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    rng = make_rng(seed)
    n = surface_points.shape[0]
    keep = max(1, int(round(keep_fraction * n)))
    idx = rng.choice(n, size=keep, replace=False)
    points = surface_points[idx] + noise_scale * rng.normal(size=(keep, 3))
    colors = np.clip(
        surface_colors[idx] + color_noise * rng.normal(size=(keep, 3)), 0.0, 1.0
    )
    return points, colors
