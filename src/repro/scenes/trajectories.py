"""Camera trajectory generators.

Each generator returns a list of :class:`~repro.gaussians.camera.Camera`
objects with ``view_id`` set to their dataset index.  The trajectories are
deliberately *structured* (orbits, survey grids, drives, walkthroughs): the
spatial locality that CLM's scheduler exploits (§3, observation iii) comes
from views of the same region being near each other along these paths —
and the "Random Order" ablation destroys exactly that adjacency.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.gaussians.camera import Camera, look_at_camera
from repro.utils.rng import SeedLike, make_rng


def orbit_trajectory(
    num_views: int,
    center: Sequence[float] = (0.0, 0.0, 0.0),
    radius: float = 1.0,
    height: float = 0.35,
    fov_y_deg: float = 60.0,
    width: int = 64,
    height_px: int = 48,
    jitter: float = 0.03,
    seed: SeedLike = 0,
) -> List[Camera]:
    """Inward-facing orbit around a central object (Bicycle-style yard).

    Every view points at the same centre, so views share most of the scene:
    high rho and heavy inter-view overlap.
    """
    rng = make_rng(seed)
    center = np.asarray(center, dtype=np.float64)
    cams = []
    for i in range(num_views):
        theta = 2.0 * math.pi * i / num_views
        eye = center + np.array(
            [
                radius * math.cos(theta),
                radius * math.sin(theta),
                height,
            ]
        )
        eye = eye + jitter * radius * rng.normal(size=3)
        cams.append(
            look_at_camera(
                eye=eye,
                target=center,
                fov_y_deg=fov_y_deg,
                width=width,
                height=height_px,
                view_id=i,
            )
        )
    return cams


def aerial_grid_trajectory(
    num_views: int,
    extent: float = 10.0,
    altitude: float = 1.5,
    tilt_deg: float = 15.0,
    fov_y_deg: float = 50.0,
    width: int = 64,
    height_px: int = 48,
    jitter: float = 0.02,
    seed: SeedLike = 0,
) -> List[Camera]:
    """Serpentine aerial survey over a square of half-width ``extent``
    (Rubble / MatrixCity BigCity style).

    The camera flies rows back and forth looking (mostly) down; each view
    covers a ground patch set by altitude and FoV, so rho shrinks as the
    surveyed area grows — the mechanism behind BigCity's 0.39% average
    sparsity.
    """
    rng = make_rng(seed)
    rows = max(1, int(round(math.sqrt(num_views))))
    cols = (num_views + rows - 1) // rows
    cams = []
    i = 0
    tilt = math.radians(tilt_deg)
    for r in range(rows):
        y = -extent + 2.0 * extent * (r + 0.5) / rows
        col_range = range(cols) if r % 2 == 0 else range(cols - 1, -1, -1)
        for c in col_range:
            if i >= num_views:
                break
            x = -extent + 2.0 * extent * (c + 0.5) / cols
            eye = np.array([x, y, altitude]) + jitter * extent * rng.normal(size=3)
            look_dir = np.array([math.sin(tilt), 0.0, -math.cos(tilt)])
            target = eye + look_dir
            cams.append(
                look_at_camera(
                    eye=eye,
                    target=target,
                    up=(0.0, 1.0, 0.0),
                    fov_y_deg=fov_y_deg,
                    width=width,
                    height=height_px,
                    view_id=i,
                )
            )
            i += 1
    return cams


def street_trajectory(
    num_views: int,
    num_streets: int = 4,
    street_length: float = 20.0,
    street_spacing: float = 5.0,
    camera_height: float = 0.15,
    fov_y_deg: float = 65.0,
    width: int = 64,
    height_px: int = 48,
    jitter: float = 0.01,
    seed: SeedLike = 0,
) -> List[Camera]:
    """Forward-facing drive along parallel streets (Ithaca365 style).

    The camera moves along each street looking forward, so consecutive
    views overlap strongly but views on different streets share little —
    the regime where TSP ordering beats camera-axis ordering most (Table 5,
    Figure 14: Ithaca shows the largest ordering effect).
    """
    rng = make_rng(seed)
    per_street = max(1, (num_views + num_streets - 1) // num_streets)
    cams = []
    i = 0
    for s in range(num_streets):
        y = (s - (num_streets - 1) / 2.0) * street_spacing
        direction = 1.0 if s % 2 == 0 else -1.0
        for k in range(per_street):
            if i >= num_views:
                break
            x = direction * (-street_length / 2.0 + street_length * k / max(1, per_street - 1))
            eye = np.array([x, y, camera_height])
            eye = eye + jitter * street_spacing * rng.normal(size=3)
            target = eye + np.array([direction, 0.0, 0.0])
            cams.append(
                look_at_camera(
                    eye=eye,
                    target=target,
                    fov_y_deg=fov_y_deg,
                    width=width,
                    height=height_px,
                    view_id=i,
                )
            )
            i += 1
    return cams


def indoor_walkthrough_trajectory(
    num_views: int,
    num_rooms: int = 6,
    room_size: float = 2.0,
    fov_y_deg: float = 70.0,
    width: int = 64,
    height_px: int = 48,
    seed: SeedLike = 0,
) -> List[Camera]:
    """Room-to-room walkthrough (Alameda indoor style).

    Rooms are laid out on a line; inside each room the camera pans through
    several headings before moving to the next room.  Views inside one
    room overlap heavily, views across rooms barely at all.
    """
    rng = make_rng(seed)
    per_room = max(1, (num_views + num_rooms - 1) // num_rooms)
    cams = []
    i = 0
    for room in range(num_rooms):
        room_center = np.array(
            [(room - (num_rooms - 1) / 2.0) * room_size * 1.2, 0.0, 0.45]
        )
        for k in range(per_room):
            if i >= num_views:
                break
            angle = 2.0 * math.pi * k / per_room + 0.3 * rng.normal()
            eye = room_center + 0.25 * room_size * np.array(
                [math.cos(angle * 0.7), math.sin(angle * 0.7), 0.0]
            )
            target = eye + np.array([math.cos(angle), math.sin(angle), -0.05])
            cams.append(
                look_at_camera(
                    eye=eye,
                    target=target,
                    fov_y_deg=fov_y_deg,
                    width=width,
                    height=height_px,
                    view_id=i,
                )
            )
            i += 1
    return cams
