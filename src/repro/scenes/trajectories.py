"""Camera trajectory generators.

Each generator returns a list of :class:`~repro.gaussians.camera.Camera`
objects with ``view_id`` set to their dataset index.  The trajectories are
deliberately *structured* (orbits, survey grids, drives, walkthroughs): the
spatial locality that CLM's scheduler exploits (§3, observation iii) comes
from views of the same region being near each other along these paths —
and the "Random Order" ablation destroys exactly that adjacency.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.gaussians.camera import Camera, look_at_camera
from repro.utils.rng import SeedLike, make_rng


def orbit_trajectory(
    num_views: int,
    center: Sequence[float] = (0.0, 0.0, 0.0),
    radius: float = 1.0,
    height: float = 0.35,
    fov_y_deg: float = 60.0,
    width: int = 64,
    height_px: int = 48,
    jitter: float = 0.03,
    seed: SeedLike = 0,
) -> List[Camera]:
    """Inward-facing orbit around a central object (Bicycle-style yard).

    Every view points at the same centre, so views share most of the scene:
    high rho and heavy inter-view overlap.
    """
    rng = make_rng(seed)
    center = np.asarray(center, dtype=np.float64)
    cams = []
    for i in range(num_views):
        theta = 2.0 * math.pi * i / num_views
        eye = center + np.array(
            [
                radius * math.cos(theta),
                radius * math.sin(theta),
                height,
            ]
        )
        eye = eye + jitter * radius * rng.normal(size=3)
        cams.append(
            look_at_camera(
                eye=eye,
                target=center,
                fov_y_deg=fov_y_deg,
                width=width,
                height=height_px,
                view_id=i,
            )
        )
    return cams


def aerial_grid_trajectory(
    num_views: int,
    extent: float = 10.0,
    altitude: float = 1.5,
    tilt_deg: float = 15.0,
    fov_y_deg: float = 50.0,
    width: int = 64,
    height_px: int = 48,
    jitter: float = 0.02,
    seed: SeedLike = 0,
) -> List[Camera]:
    """Serpentine aerial survey over a square of half-width ``extent``
    (Rubble / MatrixCity BigCity style).

    The camera flies rows back and forth looking (mostly) down; each view
    covers a ground patch set by altitude and FoV, so rho shrinks as the
    surveyed area grows — the mechanism behind BigCity's 0.39% average
    sparsity.
    """
    rng = make_rng(seed)
    rows = max(1, int(round(math.sqrt(num_views))))
    cols = (num_views + rows - 1) // rows
    tilt = math.radians(tilt_deg)
    # Serpentine (row, col) sequence as one array program: every odd row's
    # column order is reversed, then the grid is truncated to num_views.
    col_grid = np.tile(np.arange(cols), (rows, 1))
    col_grid[1::2] = col_grid[1::2, ::-1]
    r_idx = np.repeat(np.arange(rows), cols)[:num_views]
    c_idx = col_grid.reshape(-1)[:num_views]
    x = -extent + 2.0 * extent * (c_idx + 0.5) / cols
    y = -extent + 2.0 * extent * (r_idx + 0.5) / rows
    eyes = np.stack([x, y, np.full(num_views, altitude)], axis=1)
    eyes = eyes + jitter * extent * rng.normal(size=(num_views, 3))
    look_dir = np.array([math.sin(tilt), 0.0, -math.cos(tilt)])
    targets = eyes + look_dir
    return [
        look_at_camera(
            eye=eyes[i],
            target=targets[i],
            up=(0.0, 1.0, 0.0),
            fov_y_deg=fov_y_deg,
            width=width,
            height=height_px,
            view_id=i,
        )
        for i in range(num_views)
    ]


def street_trajectory(
    num_views: int,
    num_streets: int = 4,
    street_length: float = 20.0,
    street_spacing: float = 5.0,
    camera_height: float = 0.15,
    fov_y_deg: float = 65.0,
    width: int = 64,
    height_px: int = 48,
    jitter: float = 0.01,
    seed: SeedLike = 0,
) -> List[Camera]:
    """Forward-facing drive along parallel streets (Ithaca365 style).

    The camera moves along each street looking forward, so consecutive
    views overlap strongly but views on different streets share little —
    the regime where TSP ordering beats camera-axis ordering most (Table 5,
    Figure 14: Ithaca shows the largest ordering effect).
    """
    rng = make_rng(seed)
    per_street = max(1, (num_views + num_streets - 1) // num_streets)
    # Street index / along-street index per view, alternating direction —
    # the drive path as one array program.
    s_idx = np.repeat(np.arange(num_streets), per_street)[:num_views]
    k_idx = np.tile(np.arange(per_street), num_streets)[:num_views]
    direction = np.where(s_idx % 2 == 0, 1.0, -1.0)
    y = (s_idx - (num_streets - 1) / 2.0) * street_spacing
    x = direction * (
        -street_length / 2.0 + street_length * k_idx / max(1, per_street - 1)
    )
    eyes = np.stack([x, y, np.full(num_views, camera_height)], axis=1)
    eyes = eyes + jitter * street_spacing * rng.normal(size=(num_views, 3))
    targets = eyes + np.stack(
        [direction, np.zeros(num_views), np.zeros(num_views)], axis=1
    )
    return [
        look_at_camera(
            eye=eyes[i],
            target=targets[i],
            fov_y_deg=fov_y_deg,
            width=width,
            height=height_px,
            view_id=i,
        )
        for i in range(num_views)
    ]


def indoor_walkthrough_trajectory(
    num_views: int,
    num_rooms: int = 6,
    room_size: float = 2.0,
    fov_y_deg: float = 70.0,
    width: int = 64,
    height_px: int = 48,
    seed: SeedLike = 0,
) -> List[Camera]:
    """Room-to-room walkthrough (Alameda indoor style).

    Rooms are laid out on a line; inside each room the camera pans through
    several headings before moving to the next room.  Views inside one
    room overlap heavily, views across rooms barely at all.
    """
    rng = make_rng(seed)
    per_room = max(1, (num_views + num_rooms - 1) // num_rooms)
    # Room index / in-room pan index per view as one array program.
    room_idx = np.repeat(np.arange(num_rooms), per_room)[:num_views]
    k_idx = np.tile(np.arange(per_room), num_rooms)[:num_views]
    angle = 2.0 * np.pi * k_idx / per_room + 0.3 * rng.normal(size=num_views)
    centers = np.stack(
        [
            (room_idx - (num_rooms - 1) / 2.0) * room_size * 1.2,
            np.zeros(num_views),
            np.full(num_views, 0.45),
        ],
        axis=1,
    )
    eyes = centers + 0.25 * room_size * np.stack(
        [np.cos(angle * 0.7), np.sin(angle * 0.7), np.zeros(num_views)],
        axis=1,
    )
    targets = eyes + np.stack(
        [np.cos(angle), np.sin(angle), np.full(num_views, -0.05)], axis=1
    )
    return [
        look_at_camera(
            eye=eyes[i],
            target=targets[i],
            fov_y_deg=fov_y_deg,
            width=width,
            height=height_px,
            view_id=i,
        )
        for i in range(num_views)
    ]
