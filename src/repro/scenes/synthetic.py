"""Synthetic Gaussian cloud generators, one per scene topology.

Each generator returns ``(positions, colors)`` for ``n`` Gaussians; the
dataset registry wraps them into :class:`~repro.gaussians.model.GaussianModel`
instances.  The spatial *distribution* — not the absolute count — is what
determines per-view sparsity and inter-view overlap, so these generators
are the load-bearing piece of the dataset substitution (DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, make_rng


def yard_cloud(
    n: int,
    extent: float = 1.0,
    object_fraction: float = 0.15,
    background_reach: float = 4.0,
    seed: SeedLike = 0,
):
    """Bicycle-style unbounded yard (Mip-NeRF 360 topology).

    A small central subject plus a wide surrounding ring of ground and
    background content out to ``background_reach * extent``.  An orbiting
    view always contains the subject but only a wedge of the surroundings,
    which is what keeps per-view sparsity near the paper's ~20-30% instead
    of 100%.
    """
    rng = make_rng(seed)
    if not 0.0 < object_fraction < 1.0:
        raise ValueError("object_fraction must be in (0, 1)")
    n_obj = max(1, int(object_fraction * n))
    n_ring = n - n_obj
    obj = 0.22 * extent * rng.normal(size=(n_obj, 3))
    obj[:, 2] = np.abs(obj[:, 2]) * 0.8 + 0.05 * extent
    r = extent * np.sqrt(
        rng.uniform(1.0, background_reach**2, size=n_ring)
    )
    theta = rng.uniform(0, 2 * np.pi, size=n_ring)
    z = np.abs(rng.normal(scale=0.25 * extent, size=n_ring)) * (
        r / extent
    ) * 0.3  # background rises with distance (trees, buildings)
    ring = np.stack([r * np.cos(theta), r * np.sin(theta), z], axis=-1)
    positions = np.concatenate([obj, ring])
    colors = rng.uniform(0.1, 0.9, size=(n, 3))
    return positions, colors


def aerial_cloud(
    n: int, extent: float = 10.0, building_height: float = 0.4, seed: SeedLike = 0
):
    """Aerial terrain (Rubble / BigCity): a large ground plane with
    block-like height structure; uniform density over the surveyed area."""
    rng = make_rng(seed)
    xy = rng.uniform(-extent, extent, size=(n, 2))
    # Block structure: height depends on a coarse grid cell hash so that
    # nearby Gaussians form building-like clusters.
    cell = np.floor(xy / (extent / 8.0)).astype(np.int64)
    cell_hash = (cell[:, 0] * 73856093) ^ (cell[:, 1] * 19349663)
    block = (np.abs(cell_hash) % 5) / 4.0
    z = block * building_height * rng.uniform(0.0, 1.0, size=n)
    positions = np.concatenate([xy, z[:, None]], axis=1)
    colors = rng.uniform(0.2, 0.8, size=(n, 3))
    return positions, colors


def street_cloud(
    n: int,
    num_streets: int = 4,
    street_length: float = 20.0,
    street_spacing: float = 5.0,
    corridor_width: float = 1.2,
    seed: SeedLike = 0,
):
    """Street corridors (Ithaca): Gaussians line the roadway facades, so a
    forward-facing view only reaches content along its own street."""
    rng = make_rng(seed)
    street = rng.integers(0, num_streets, size=n)
    x = rng.uniform(-street_length / 2.0, street_length / 2.0, size=n)
    y_offset = rng.normal(scale=corridor_width / 2.0, size=n)
    y = (street - (num_streets - 1) / 2.0) * street_spacing + y_offset
    z = np.abs(rng.normal(scale=0.25, size=n))
    positions = np.stack([x, y, z], axis=-1)
    colors = rng.uniform(0.1, 0.9, size=(n, 3))
    return positions, colors


def indoor_cloud(
    n: int, num_rooms: int = 6, room_size: float = 2.0, seed: SeedLike = 0
):
    """Indoor rooms (Alameda): Gaussians on walls/floor/furniture of a row
    of rooms; cross-room visibility is blocked by distance and layout."""
    rng = make_rng(seed)
    room = rng.integers(0, num_rooms, size=n)
    center_x = (room - (num_rooms - 1) / 2.0) * room_size * 1.2
    local = rng.uniform(-0.5, 0.5, size=(n, 3)) * room_size
    # Push points toward the walls (max-coordinate inflation) to mimic
    # surface-dominated indoor geometry.
    dominant = np.argmax(np.abs(local[:, :2]), axis=1)
    signs = np.sign(local[np.arange(n), dominant])
    signs[signs == 0] = 1.0
    local[np.arange(n), dominant] = signs * 0.5 * room_size
    positions = local.copy()
    positions[:, 0] += center_x
    positions[:, 2] = np.abs(local[:, 2]) * 0.5
    colors = rng.uniform(0.2, 0.9, size=(n, 3))
    return positions, colors
