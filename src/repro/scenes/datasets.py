"""The dataset registry: paper Table 2/3 scenes as synthetic equivalents.

Each :class:`SceneSpec` records the paper-scale facts (Gaussian count,
image count, resolution, batch size, blending density) and knows how to
instantiate a scaled synthetic :class:`Scene` whose camera/cloud geometry
reproduces the dataset's sparsity regime.  Performance experiments run on
paper-scale *counts* derived from the scaled scene's measured index sets
(``Scene.count_scale``), while functional training runs directly on the
scaled model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.scenes import synthetic, trajectories
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class SceneSpec:
    """Paper-scale facts plus synthetic-generation recipe for one scene."""

    name: str
    scene_type: str
    paper_num_gaussians: int  # Table 2 working size
    paper_num_images: int  # Table 3
    paper_resolution: Tuple[int, int]  # (width, height)
    batch_size: int  # Table 3 training batch size
    splats_per_pixel: float  # blending density for the kernel cost model
    description: str = ""
    # Synthetic recipe (used by build()):
    cloud: str = "yard"
    trajectory: str = "orbit"
    geometry: Dict[str, float] = field(default_factory=dict)
    zfar: Optional[float] = None

    @property
    def paper_pixels(self) -> int:
        return self.paper_resolution[0] * self.paper_resolution[1]


@dataclass
class Scene:
    """An instantiated synthetic scene."""

    spec: SceneSpec
    model: GaussianModel
    cameras: List[Camera]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_gaussians(self) -> int:
        return self.model.num_gaussians

    @property
    def count_scale(self) -> float:
        """Multiplier mapping scaled index-set sizes to paper-scale counts."""
        return self.spec.paper_num_gaussians / self.model.num_gaussians

    def count_scale_for(self, paper_n: float) -> float:
        """Multiplier for an experiment-specific paper-scale model size."""
        return paper_n / self.model.num_gaussians


# ---------------------------------------------------------------------------
# Registry — geometry tuned so measured per-view sparsity lands in each
# dataset's regime (validated by tests against the Figure 5 ordering):
# bicycle >> rubble > alameda > ithaca > bigcity.
# ---------------------------------------------------------------------------
SCENE_SPECS: Dict[str, SceneSpec] = {
    "bicycle": SceneSpec(
        name="bicycle",
        scene_type="yard",
        paper_num_gaussians=9_000_000,
        paper_num_images=200,
        paper_resolution=(3840, 2160),
        batch_size=4,
        splats_per_pixel=15.0,
        description="Mip-NeRF 360 Bicycle: 4K yard orbit, densest views",
        cloud="yard",
        trajectory="orbit",
        geometry={"extent": 1.0, "radius": 1.3, "height": 0.5, "fov": 42.0},
        # Frustum culling has no occlusion; a finite far plane stands in for
        # the central subject occluding the far side of the background ring.
        zfar=2.3,
    ),
    "rubble": SceneSpec(
        name="rubble",
        scene_type="aerial",
        paper_num_gaussians=40_000_000,
        paper_num_images=1600,
        paper_resolution=(3840, 2160),
        batch_size=8,
        splats_per_pixel=10.0,
        description="Mega-NeRF Rubble: 4K aerial survey",
        cloud="aerial",
        trajectory="aerial",
        geometry={"extent": 7.5, "altitude": 2.8, "fov": 60.0},
    ),
    "alameda": SceneSpec(
        name="alameda",
        scene_type="indoor",
        paper_num_gaussians=45_000_000,
        paper_num_images=1700,
        paper_resolution=(2560, 1440),
        batch_size=8,
        splats_per_pixel=12.0,
        description="Zip-NeRF Alameda: 2K indoor walkthrough",
        cloud="indoor",
        trajectory="indoor",
        geometry={"num_rooms": 6, "room_size": 2.0, "fov": 65.0},
        zfar=2.0,
    ),
    "ithaca": SceneSpec(
        name="ithaca",
        scene_type="street",
        paper_num_gaussians=70_000_000,
        paper_num_images=8200,
        paper_resolution=(1280, 960),
        batch_size=16,
        splats_per_pixel=12.0,
        description="Ithaca365: 1K street drive (COLMAP-posed)",
        cloud="street",
        trajectory="street",
        geometry={
            "num_streets": 8,
            "street_length": 40.0,
            "street_spacing": 4.0,
            "fov": 65.0,
        },
        zfar=4.0,
    ),
    "bigcity": SceneSpec(
        name="bigcity",
        scene_type="aerial",
        paper_num_gaussians=100_000_000,
        paper_num_images=60000,
        paper_resolution=(1920, 1080),
        batch_size=64,
        splats_per_pixel=3.0,
        description="MatrixCity BigCity: 1080p city-scale aerial, 25.3 km^2",
        cloud="aerial",
        trajectory="aerial",
        geometry={"extent": 45.0, "altitude": 2.8, "fov": 60.0},
    ),
}


def scene_names() -> List[str]:
    """Registry order follows the paper's tables."""
    return list(SCENE_SPECS)


def get_scene_spec(name: str) -> SceneSpec:
    try:
        return SCENE_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown scene '{name}'; available: {', '.join(SCENE_SPECS)}"
        ) from None


def _make_cloud(spec: SceneSpec, n: int, seed) -> "tuple[np.ndarray, np.ndarray]":
    g = spec.geometry
    if spec.cloud == "yard":
        return synthetic.yard_cloud(n, extent=g.get("extent", 1.0), seed=seed)
    if spec.cloud == "aerial":
        return synthetic.aerial_cloud(n, extent=g.get("extent", 10.0), seed=seed)
    if spec.cloud == "street":
        return synthetic.street_cloud(
            n,
            num_streets=int(g.get("num_streets", 4)),
            street_length=g.get("street_length", 20.0),
            street_spacing=g.get("street_spacing", 5.0),
            seed=seed,
        )
    if spec.cloud == "indoor":
        return synthetic.indoor_cloud(
            n,
            num_rooms=int(g.get("num_rooms", 6)),
            room_size=g.get("room_size", 2.0),
            seed=seed,
        )
    raise ValueError(f"unknown cloud type {spec.cloud}")


def _make_cameras(
    spec: SceneSpec, num_views: int, width: int, height: int, seed
) -> List[Camera]:
    g = spec.geometry
    fov = g.get("fov", 60.0)
    if spec.trajectory == "orbit":
        cams = trajectories.orbit_trajectory(
            num_views,
            radius=g.get("radius", 1.3),
            height=g.get("height", 0.5),
            fov_y_deg=fov,
            width=width,
            height_px=height,
            seed=seed,
        )
    elif spec.trajectory == "aerial":
        cams = trajectories.aerial_grid_trajectory(
            num_views,
            extent=g.get("extent", 10.0),
            altitude=g.get("altitude", 2.8),
            fov_y_deg=fov,
            width=width,
            height_px=height,
            seed=seed,
        )
    elif spec.trajectory == "street":
        cams = trajectories.street_trajectory(
            num_views,
            num_streets=int(g.get("num_streets", 4)),
            street_length=g.get("street_length", 20.0),
            street_spacing=g.get("street_spacing", 5.0),
            fov_y_deg=fov,
            width=width,
            height_px=height,
            seed=seed,
        )
    elif spec.trajectory == "indoor":
        cams = trajectories.indoor_walkthrough_trajectory(
            num_views,
            num_rooms=int(g.get("num_rooms", 6)),
            room_size=g.get("room_size", 2.0),
            fov_y_deg=fov,
            width=width,
            height_px=height,
            seed=seed,
        )
    else:
        raise ValueError(f"unknown trajectory {spec.trajectory}")
    if spec.zfar is not None:
        for cam in cams:
            cam.zfar = spec.zfar
            cam._cached_planes = None
    return cams


def build_scene(
    name: str,
    scale: float = 1e-3,
    num_views: Optional[int] = None,
    image_size: Tuple[int, int] = (64, 48),
    sh_degree: int = 1,
    seed: SeedLike = 0,
) -> Scene:
    """Instantiate a scaled synthetic equivalent of a paper dataset.

    Parameters
    ----------
    scale:
        Fraction of the paper's Gaussian count to generate (default 1/1000;
        sparsity statistics are scale-invariant, see DESIGN.md §5).
    num_views:
        Number of cameras; defaults to ``min(paper images, 256)``.
    image_size:
        Synthetic camera resolution (only affects functional rendering —
        performance models use the paper resolution from the spec).
    """
    spec = get_scene_spec(name)
    rng = make_rng(seed)
    n = max(64, int(round(spec.paper_num_gaussians * scale)))
    views = num_views if num_views is not None else min(spec.paper_num_images, 256)
    positions, colors = _make_cloud(spec, n, rng)
    model = GaussianModel.from_point_cloud(
        positions, colors=colors, sh_degree=sh_degree, seed=rng
    )
    cameras = _make_cameras(spec, views, image_size[0], image_size[1], rng)
    return Scene(spec=spec, model=model, cameras=cameras)
