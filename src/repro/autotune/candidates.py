"""Candidate configuration enumeration for the auto-tuner.

A :class:`TunedConfig` bundles the four knobs the adaptive runtime owns;
a :class:`CandidateSpace` is the grid the tuner searches.  Enumeration
order is deterministic (workers, then group size, then ordering, then
backend) and ties in predicted makespan resolve to the *earliest*
candidate, so tuning is reproducible given the same measurements.

Two deliberate exclusions:

- the ``random`` ordering is rejected: it is plan-cache-exempt and draws
  from the engine RNG per plan, so tuning over it would both defeat
  memoization and perturb seeded streams;
- ``kernel_backends`` defaults to ``(None,)`` — "whatever backend the
  engine resolved" — because switching numeric backends mid-run changes
  results within their 1e-10 parity envelope, which would break the
  bit-identical-training guarantee the runtime otherwise keeps.  Callers
  that accept that trade list explicit backend names
  (``EngineConfig.autotune_kernel_backends``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class TunedConfig:
    """One point of the tuning grid (hashable, fingerprint-friendly)."""

    overlap_workers: int
    group_size: int
    ordering: str
    #: ``None`` = keep the engine's resolved backend (no overlay).
    kernel_backend: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "overlap_workers": self.overlap_workers,
            "group_size": self.group_size,
            "ordering": self.ordering,
            "kernel_backend": self.kernel_backend,
        }


@dataclass(frozen=True)
class CandidateSpace:
    """The grid of candidate configurations the tuner predicts over."""

    workers: Tuple[int, ...] = (0, 1, 2)
    group_sizes: Tuple[int, ...] = (64, 256)
    orderings: Tuple[str, ...] = ("tsp", "gs_count", "identity")
    kernel_backends: Tuple[Optional[str], ...] = (None,)

    def __post_init__(self) -> None:
        for name, values in (
            ("workers", self.workers),
            ("group_sizes", self.group_sizes),
            ("orderings", self.orderings),
            ("kernel_backends", self.kernel_backends),
        ):
            if not values:
                raise ValueError(f"CandidateSpace.{name} must be non-empty")
        if any(w < 0 for w in self.workers):
            raise ValueError("negative worker counts are not candidates")
        if any(g <= 0 for g in self.group_sizes):
            raise ValueError("group sizes must be positive")
        if "random" in self.orderings:
            raise ValueError(
                "the 'random' ordering is cache-exempt and RNG-consuming; "
                "it cannot be auto-tuned"
            )

    @classmethod
    def from_engine_config(cls, config) -> "CandidateSpace":
        """Build the space an :class:`~repro.core.config.EngineConfig`
        describes (``autotune_*`` fields, with safe defaults)."""
        backends = getattr(config, "autotune_kernel_backends", None)
        return cls(
            workers=tuple(getattr(config, "autotune_workers", (0, 1, 2))),
            group_sizes=tuple(
                getattr(config, "autotune_group_sizes", (64, 256))
            ),
            orderings=tuple(
                getattr(
                    config, "autotune_orderings", ("tsp", "gs_count", "identity")
                )
            ),
            kernel_backends=(None,) if not backends else tuple(backends),
        )

    def enumerate(self) -> List[TunedConfig]:
        """Every candidate, in deterministic tie-break order."""
        out: List[TunedConfig] = []
        for w in self.workers:
            for g in self.group_sizes:
                for ordering in self.orderings:
                    for backend in self.kernel_backends:
                        out.append(
                            TunedConfig(
                                overlap_workers=int(w),
                                group_size=int(g),
                                ordering=ordering,
                                kernel_backend=backend,
                            )
                        )
        return out

    @property
    def size(self) -> int:
        return (
            len(self.workers)
            * len(self.group_sizes)
            * len(self.orderings)
            * len(self.kernel_backends)
        )
