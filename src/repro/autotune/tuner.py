"""`AutoTuner` — per-batch configuration choice via simulated makespan.

The loop per training batch:

1. the engine plans the batch once per candidate ordering (memoized by
   the :class:`~repro.planning.PlanCache`, so steady state costs nothing);
2. :meth:`AutoTuner.choose` builds one :class:`repro.hardware.Simulator`
   DAG per candidate — the render chain (assemble → forward → backward)
   serialized on the training thread's ``main`` resource, the finalized
   Adam chunks fanned out over ``overlap_workers`` CPU lanes (or
   serialized on ``main`` when 0), the critical GPU Adam closing the
   batch — and returns the argmin predicted makespan;
3. the engine executes the chosen config; :meth:`AutoTuner.observe`
   reconciles predicted vs measured wall time
   (:func:`~repro.planning.adam_overlap.reconcile_predicted_makespan`)
   and calibrates the :class:`~repro.autotune.cost_model.CostModel` from
   the batch's measured per-op seconds.

Exploration: forward/backward rates depend on ``group_size`` (slab
width) and kernel backend in ways no spec predicts, so combinations that
have never been measured are visited first — one batch each, in grid
order — before the tuner switches to pure argmin exploitation.  With one
group size and one backend there is no exploration phase at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.autotune.candidates import CandidateSpace, TunedConfig
from repro.autotune.cost_model import DISPATCH_OVERHEAD_S, CostModel
from repro.hardware.simulator import Simulator
from repro.hardware.specs import RTX4090_TESTBED, Testbed
from repro.planning.adam_overlap import (
    MakespanReconciliation,
    reconcile_predicted_makespan,
)
from repro.planning.plan import BatchPlan

#: Resource names of the per-candidate prediction DAG.  ``main`` is the
#: training thread (render chain + inline Adam); ``cpu.adam{w}`` are the
#: overlap runtime's worker lanes.
MAIN_RESOURCE = "main"


@dataclass(frozen=True)
class TunedChoice:
    """One batch's tuning decision."""

    config: TunedConfig
    #: Predicted makespan of :attr:`config` (seconds).
    predicted_s: float
    #: True while the tuner is measuring a never-seen (group size,
    #: backend) combination instead of exploiting the model.
    explored: bool
    #: Every candidate's predicted makespan this batch (empty during
    #: exploration) — the per-batch tuning table, cheapest first.
    table: Tuple[Tuple[TunedConfig, float], ...] = ()


@dataclass(frozen=True)
class MeasuredBatch:
    """Measured per-op seconds + unit counts of one executed batch (the
    calibration sample :meth:`AutoTuner.observe` consumes)."""

    wall_s: float
    forward_s: float
    backward_s: float
    #: Non-critical (CPU) Adam seconds summed over chunk tasks.
    adam_s: float
    #: GPU-side critical Adam seconds.
    critical_adam_s: float
    #: Of ``adam_s``, seconds measured as hidden under other work.
    hidden_s: float
    #: Working-set rows rendered (sum over microbatches).
    working_rows: int
    #: Rows assembled/retired/cache-copied (loads + stores + cached).
    traffic_rows: int
    #: Non-critical chunk rows updated.
    chunk_rows: int
    #: Touched rows the critical Adam updated.
    touched_rows: int


@dataclass
class TunerStats:
    """Cumulative tuner accounting (mirrors what ``PerfCounters`` folds)."""

    batches: int = 0
    explored_batches: int = 0
    predicted_s: float = 0.0
    measured_s: float = 0.0
    rel_error_sum: float = 0.0
    reconciled: int = 0
    last: Optional[MakespanReconciliation] = None
    choices: Dict[TunedConfig, int] = field(default_factory=dict)

    @property
    def mean_rel_error(self) -> float:
        """Mean relative prediction error over *exploited* batches."""
        if self.reconciled == 0:
            return 0.0
        return self.rel_error_sum / self.reconciled


class AutoTuner:
    """Simulator-driven argmin over a :class:`CandidateSpace`."""

    def __init__(
        self,
        space: Optional[CandidateSpace] = None,
        model: Optional[CostModel] = None,
        testbed: Testbed = RTX4090_TESTBED,
        num_pixels: int = 1024,
    ) -> None:
        self.space = space or CandidateSpace()
        self.model = model or CostModel(testbed=testbed, num_pixels=num_pixels)
        self.stats = TunerStats()
        # (group_size, backend) combinations never yet measured, visited
        # one batch each before exploitation starts.
        self._unexplored: List[Tuple[int, Optional[str]]] = [
            (int(g), b)
            for g in self.space.group_sizes
            for b in self.space.kernel_backends
        ]

    # -- what the engine asks per batch ----------------------------------
    @property
    def orderings(self) -> Tuple[str, ...]:
        """Orderings the engine must plan (the candidate orderings)."""
        return self.space.orderings

    def choose(self, plans: Mapping[str, BatchPlan]) -> TunedChoice:
        """Pick this batch's configuration.

        ``plans`` maps each candidate ordering to that ordering's
        :class:`BatchPlan` for the batch (all orderings of the space must
        be present).  Returns the argmin-predicted-makespan candidate, or
        the next unexplored (group size, backend) probe while calibration
        samples are still missing.
        """
        for ordering in self.space.orderings:
            if ordering not in plans:
                raise KeyError(f"no plan for candidate ordering {ordering!r}")
        self.stats.batches += 1
        if self._unexplored:
            group_size, backend = self._unexplored[0]
            config = TunedConfig(
                overlap_workers=int(self.space.workers[-1]),
                group_size=group_size,
                ordering=self.space.orderings[0],
                kernel_backend=backend,
            )
            self.stats.explored_batches += 1
            predicted = self.predict_makespan(plans[config.ordering], config)
            return TunedChoice(
                config=config, predicted_s=predicted, explored=True
            )
        table = [
            (config, self.predict_makespan(plans[config.ordering], config))
            for config in self.space.enumerate()
        ]
        best_config, best_predicted = table[0]
        for config, predicted in table[1:]:
            if predicted < best_predicted:
                best_config, best_predicted = config, predicted
        table.sort(key=lambda item: item[1])
        return TunedChoice(
            config=best_config,
            predicted_s=best_predicted,
            explored=False,
            table=tuple(table),
        )

    def observe(
        self, choice: TunedChoice, plan: BatchPlan, measured: MeasuredBatch
    ) -> MakespanReconciliation:
        """Reconcile ``choice``'s prediction against the measured batch
        and calibrate the cost model from its per-op seconds."""
        config = choice.config
        m = self.model
        m.observe(
            ("forward", config.group_size, config.kernel_backend),
            measured.working_rows,
            measured.forward_s,
        )
        m.observe(
            ("backward", config.group_size, config.kernel_backend),
            measured.working_rows,
            measured.backward_s,
        )
        m.observe(("adam",), measured.chunk_rows, measured.adam_s)
        m.observe(
            ("critical_adam",), measured.touched_rows, measured.critical_adam_s
        )
        # The residual (wall minus every attributed op, with hidden Adam
        # seconds off the critical path) is the assemble/retire traffic
        # cost per moved row.
        serial_adam = max(0.0, measured.adam_s - measured.hidden_s)
        residual = measured.wall_s - (
            measured.forward_s
            + measured.backward_s
            + measured.critical_adam_s
            + serial_adam
        )
        m.observe(("overhead",), measured.traffic_rows, residual)
        probe = (config.group_size, config.kernel_backend)
        if probe in self._unexplored:
            self._unexplored.remove(probe)
        reconciliation = reconcile_predicted_makespan(
            choice.predicted_s, measured.wall_s
        )
        self.stats.predicted_s += reconciliation.predicted_s
        self.stats.measured_s += reconciliation.measured_s
        self.stats.last = reconciliation
        self.stats.choices[config] = self.stats.choices.get(config, 0) + 1
        if not choice.explored:
            # Exploration batches predict off raw priors by design; folding
            # their error in would misreport the calibrated model's skill.
            self.stats.reconciled += 1
            self.stats.rel_error_sum += reconciliation.relative_error
        return reconciliation

    # -- prediction ------------------------------------------------------
    def predict_makespan(self, plan: BatchPlan, config: TunedConfig) -> float:
        """Predicted makespan of executing ``plan`` under ``config``."""
        return self.build_simulator(plan, config).run().makespan

    def build_simulator(
        self, plan: BatchPlan, config: TunedConfig
    ) -> Simulator:
        """The candidate's discrete-event DAG: render chain on ``main``,
        Adam chunks over the configured worker lanes (round-robin, the
        pool's deterministic lowest-id-first dispatch approximated by
        serial lanes), critical Adam after the last retire."""
        sim = Simulator()
        m = self.model
        workers = config.overlap_workers
        lanes = [f"cpu.adam{w}" for w in range(workers)] or [MAIN_RESOURCE]
        chunk_sizes = plan.adam_chunk_sizes
        prev: Optional[int] = None
        lane = 0
        for i, step in enumerate(plan.steps):
            rows = int(step.working_set.size)
            traffic = int(
                step.loads.size + step.stores.size + step.cached.size
            )
            asm = sim.add(
                f"ASM.{i}",
                MAIN_RESOURCE,
                m.overhead_s(traffic),
                deps=(prev,) if prev is not None else (),
                kind="assemble",
            )
            fwd = sim.add(
                f"FWD.{i}",
                MAIN_RESOURCE,
                m.forward_s(rows, config.group_size, config.kernel_backend),
                deps=(asm,),
                kind="forward",
            )
            bwd = sim.add(
                f"BWD.{i}",
                MAIN_RESOURCE,
                m.backward_s(rows, config.group_size, config.kernel_backend),
                deps=(fwd,),
                kind="backward",
            )
            prev = bwd
            chunk = chunk_sizes[i]
            if chunk:
                duration = m.adam_s(chunk)
                if workers:
                    duration += DISPATCH_OVERHEAD_S
                sim.add(
                    f"ADAM.{i}",
                    lanes[lane % len(lanes)],
                    duration,
                    deps=(bwd,),
                    kind="adam",
                )
                lane += 1
        if prev is not None:
            sim.add(
                "CRIT_ADAM",
                MAIN_RESOURCE,
                m.critical_adam_s(int(plan.touched.size)),
                deps=(prev,),
                kind="critical_adam",
            )
        return sim

    # -- reporting -------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Flat summary for the CLI / bench ``extra`` payloads."""
        s = self.stats
        most_chosen = None
        if s.choices:
            most_chosen = max(
                s.choices.items(), key=lambda item: item[1]
            )[0].as_dict()
        return {
            "batches": s.batches,
            "explored_batches": s.explored_batches,
            "mean_rel_error": s.mean_rel_error,
            "predicted_s": s.predicted_s,
            "measured_s": s.measured_s,
            "candidates": self.space.size,
            "most_chosen": most_chosen,
            "model_observations": self.model.observations,
        }
