"""`repro.autotune` — simulator-driven configuration auto-tuning.

Closes the predict/measure loop ROADMAP item 5 calls for.  Every
performance knob the stack has grown stays hand-tuned without this
package: ``overlap_workers`` (the overlap runtime), raster ``group_size``
(the slab substrate), microbatch ordering (the planner), kernel backend
(the registry).  The auto-tuner picks them per batch:

1. :class:`CostModel` holds seconds-per-unit rates for every pipeline op
   (assemble/forward/backward/Adam), seeded from ``hardware/specs``
   priors and calibrated online from measured per-op seconds (EMA);
2. :class:`CandidateSpace` enumerates candidate configurations;
3. :class:`AutoTuner.choose` builds one discrete-event
   :class:`repro.hardware.Simulator` DAG per candidate from the batch's
   :class:`~repro.planning.BatchPlan` and picks the argmin predicted
   makespan;
4. after the batch executes, :meth:`AutoTuner.observe` reconciles the
   prediction against the measured wall time
   (:func:`repro.planning.adam_overlap.reconcile_predicted_makespan`)
   and feeds the measured per-op rates back into the model.

Surfaced as ``EngineConfig.autotune`` / ``repro train --autotune`` /
``TrainingSession.tuner``; the chosen config and prediction error are
threaded through ``PerfCounters`` and ``BenchRecord`` (see the README's
"Adaptive runtime" section).
"""

from repro.autotune.candidates import CandidateSpace, TunedConfig
from repro.autotune.cost_model import CostModel
from repro.autotune.tuner import AutoTuner, MeasuredBatch, TunedChoice

__all__ = [
    "AutoTuner",
    "CandidateSpace",
    "CostModel",
    "MeasuredBatch",
    "TunedChoice",
    "TunedConfig",
]
