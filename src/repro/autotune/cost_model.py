"""The auto-tuner's calibrated per-op cost model.

Two ingredients, exactly as ROADMAP item 5 prescribes:

- **Priors from ``hardware/specs``**: before anything is measured, rates
  come from the :class:`repro.hardware.kernels.KernelCostModel` built on a
  :class:`~repro.hardware.specs.Testbed` — the same constants the
  discrete-event pipeline simulation uses.  Their absolute scale models
  the paper's CUDA hardware, not this repo's functional NumPy kernels,
  but the argmin over candidates only needs the *relative* shape
  (backward ≈ 2× forward, Adam seconds ∝ finalized rows, transfer
  seconds ∝ moved rows), which the specs encode.
- **Measured rates**: every executed batch reports per-op seconds and
  unit counts (working-set rows rendered, chunk rows updated, rows
  moved); :meth:`CostModel.observe` folds ``seconds/units`` into an
  exponential moving average per op key.  A single observation replaces
  the prior entirely — from then on predictions are anchored to this
  machine, and the EMA tracks drift (thermal throttling, competing
  load) without forgetting history.

Keys are tuples ``(op, *subkey)``.  Forward/backward rates are keyed by
``(group_size, kernel_backend)`` because the slab width and the backend
change the achieved rate per row; an unmeasured combination falls back to
the measured rate of the nearest group size (same backend preferred)
before falling back to the prior — so one measured slab width anchors
its neighbours instead of leaving them on paper-hardware numbers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.hardware.kernels import KernelCostModel
from repro.hardware.specs import RTX4090_TESTBED, Testbed

#: Per-task hand-off cost of running an op on a pool worker instead of
#: the training thread (condition-variable wake + GIL hand-off) — charged
#: by predictions for every overlapped Adam chunk so worker counts are
#: not free in the model.
DISPATCH_OVERHEAD_S = 5e-5

Key = Tuple


class CostModel:
    """Seconds-per-unit rate table: specs priors + online calibration."""

    def __init__(
        self,
        testbed: Testbed = RTX4090_TESTBED,
        num_pixels: int = 1024,
        splats_per_pixel: float = 8.0,
        ema: float = 0.5,
    ) -> None:
        if not 0.0 < ema <= 1.0:
            raise ValueError(f"ema must be in (0, 1], got {ema}")
        self.kernel_costs = KernelCostModel(
            testbed=testbed, splats_per_pixel=splats_per_pixel
        )
        self.num_pixels = max(1, int(num_pixels))
        self.ema = float(ema)
        self._rates: Dict[Key, float] = {}
        self.observations = 0

    # -- calibration -----------------------------------------------------
    def observe(self, key: Key, units: float, seconds: float) -> None:
        """Fold one measurement of ``seconds`` over ``units`` into the
        rate for ``key`` (no-op for empty or non-positive measurements)."""
        if units <= 0 or seconds <= 0:
            return
        rate = seconds / units
        prev = self._rates.get(key)
        if prev is None:
            self._rates[key] = rate
        else:
            self._rates[key] = self.ema * rate + (1.0 - self.ema) * prev
        self.observations += 1

    def measured(self, key: Key) -> bool:
        return key in self._rates

    # -- rate lookup -----------------------------------------------------
    def rate(self, key: Key) -> float:
        """Seconds per unit for ``key``: measured → nearest measured
        sibling (same op) → specs prior."""
        hit = self._rates.get(key)
        if hit is not None:
            return hit
        sibling = self._nearest_sibling(key)
        if sibling is not None:
            return sibling
        return self._prior(key)

    def _nearest_sibling(self, key: Key) -> Optional[float]:
        """For group-size-keyed ops, the measured rate whose group size is
        nearest in log space (same-backend matches win ties)."""
        if key[0] not in ("forward", "backward") or len(key) != 3:
            return None
        op, group_size, backend = key
        candidates: List[Tuple[float, int, float]] = []
        for other, rate in self._rates.items():
            if len(other) != 3 or other[0] != op:
                continue
            distance = abs(
                math.log(max(1, group_size)) - math.log(max(1, other[1]))
            )
            backend_penalty = 0 if other[2] == backend else 1
            candidates.append((distance, backend_penalty, rate))
        if not candidates:
            return None
        return min(candidates)[2]

    def _prior(self, key: Key) -> float:
        kc = self.kernel_costs
        op = key[0]
        if op == "forward":
            # Per-row rate at a nominal working set, pixel term amortized.
            nominal = 1000.0
            return kc.forward_time(nominal, self.num_pixels) / nominal
        if op == "backward":
            nominal = 1000.0
            return kc.backward_time(nominal, self.num_pixels) / nominal
        if op == "adam":
            return kc.cpu_adam_sparse_time(1.0)
        if op == "critical_adam":
            return kc.gpu_adam_time(1.0) - kc.kernel_launch_overhead
        if op == "overhead":
            # Assemble/retire traffic: one non-critical row over PCIe.
            return kc.load_params_time(1.0)
        raise KeyError(f"unknown cost-model op {op!r}")

    # -- typed helpers (what the DAG builder calls) ----------------------
    def forward_s(
        self, rows: int, group_size: int, kernel_backend: Optional[str]
    ) -> float:
        return rows * self.rate(("forward", int(group_size), kernel_backend))

    def backward_s(
        self, rows: int, group_size: int, kernel_backend: Optional[str]
    ) -> float:
        return rows * self.rate(("backward", int(group_size), kernel_backend))

    def adam_s(self, rows: int) -> float:
        return rows * self.rate(("adam",))

    def critical_adam_s(self, rows: int) -> float:
        return rows * self.rate(("critical_adam",))

    def overhead_s(self, traffic_rows: int) -> float:
        """Assemble + retire cost of moving/copying ``traffic_rows``."""
        return traffic_rows * self.rate(("overhead",))

    def snapshot(self) -> Dict[str, float]:
        """Flat copy of the measured rates (diagnostics / CLI summary)."""
        return {
            ".".join(str(part) for part in key): rate
            for key, rate in sorted(
                self._rates.items(), key=lambda kv: str(kv[0])
            )
        }
