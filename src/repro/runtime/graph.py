"""Dependency task-graph executor — the generalization of the overlap
runtime (ROADMAP item 5).

:class:`OverlapExecutor` hard-codes one pattern: a producer thread renders
while workers drain a queue of independent CPU-Adam chunks.  The adaptive
runtime needs the general form: a batch is a *dependency graph* whose
nodes are the working-set assembly (host→device loads + cache copies),
raster forward, raster backward, gradient retirement (device→host
stores), and the per-chunk CPU Adam updates — and any dependency-
respecting execution order must produce bit-identical arrays.

:class:`TaskGraph` declares the nodes (plain callables with integer-id
dependencies); :class:`GraphExecutor` runs a graph either inline
(``workers=0``: deterministic topological order on the calling thread) or
on a persistent worker pool (``workers>=1``: ready nodes execute in any
order, lowest node id first when several are ready).  Correctness never
depends on the schedule: callers only hand the executor graphs whose
concurrently-runnable nodes touch disjoint state — for the CLM batch
graph that is guaranteed by chunk disjointness (§4.2.2) and by keeping
the render chain (assemble→forward→backward→retire) a linear dependency
chain, because backward gradient accumulation across tile slabs is
order-sensitive and must not be reordered (see
``tests/runtime/test_graph_equivalence.py``).

Accounting (:class:`GraphStats`) mirrors :class:`ExecutorStats` where the
concepts coincide (``tasks``, ``task_s``, ``busy_span_s``, ``cancelled``)
and differs where the execution model does: in graph mode the producer
thread blocks in :meth:`GraphExecutor.run` for the whole graph, so
"hidden" seconds are the wall-clock span during which **two or more**
nodes genuinely ran concurrently (e.g. an Adam chunk under the next
microbatch's forward) — 0 inline, 0 with one worker, and never larger
than the elapsed wall time.  ``kind_s`` sums execution seconds per node
kind, which is exactly the per-op measurement the auto-tuner's cost model
calibrates from (:mod:`repro.autotune`).

Fail-fast matches the overlap executor: once any node raises, every node
not yet started is cancelled (counted, never executed), the drain
completes, and :meth:`GraphExecutor.run` re-raises the first error
wrapped in :class:`WorkerError` — shared state stays exactly as the
completed nodes left it.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runtime.executor import WorkerError


@dataclass(frozen=True)
class GraphTask:
    """One node of a :class:`TaskGraph` (immutable once added)."""

    task_id: int
    name: str
    kind: str
    fn: Callable
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any]
    deps: Tuple[int, ...]


@dataclass(frozen=True)
class GraphStats:
    """Accounting of one :meth:`GraphExecutor.run` call."""

    #: Nodes that executed (cancelled nodes excluded).
    tasks: int
    #: Summed node execution seconds (concurrent workers' seconds add up).
    task_s: float
    #: Wall-clock span during which >= 1 node was executing.
    busy_span_s: float
    #: Wall-clock span during which >= 2 nodes executed concurrently —
    #: the seconds the graph genuinely overlapped work (0 inline / with
    #: one worker, since the producer blocks in ``run`` and contributes
    #: no compute of its own).
    hidden_s: float
    #: Wall-clock duration of the whole ``run`` call.
    wall_s: float
    #: Nodes cancelled by fail-fast after an earlier node crashed.
    cancelled: int = 0
    #: Execution seconds summed per node ``kind`` — the per-op
    #: measurements the auto-tuner's cost model calibrates from.
    kind_s: Dict[str, float] = field(default_factory=dict)


class TaskGraph:
    """An append-only DAG of callables.

    Dependencies reference earlier node ids, so the graph is acyclic by
    construction; :meth:`GraphExecutor.run` still validates via Kahn's
    algorithm (defense against future mutation APIs).
    """

    def __init__(self, name: str = "batch") -> None:
        self.name = name
        self._tasks: List[GraphTask] = []

    def add(
        self,
        fn: Callable,
        *args: Any,
        name: Optional[str] = None,
        kind: str = "generic",
        deps: Tuple[int, ...] = (),
        **kwargs: Any,
    ) -> int:
        """Add ``fn(*args, **kwargs)`` as a node; returns its id.

        ``deps`` are ids of previously added nodes that must complete
        first; ``kind`` labels the node for :attr:`GraphStats.kind_s`.
        """
        task_id = len(self._tasks)
        dep_tuple = tuple(int(d) for d in deps)
        for d in dep_tuple:
            if not 0 <= d < task_id:
                raise ValueError(
                    f"dependency {d} of node {name or task_id} does not "
                    f"reference an earlier node"
                )
        self._tasks.append(
            GraphTask(
                task_id=task_id,
                name=name or f"{kind}.{task_id}",
                kind=kind,
                fn=fn,
                args=args,
                kwargs=kwargs,
                deps=dep_tuple,
            )
        )
        return task_id

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    @property
    def tasks(self) -> Tuple[GraphTask, ...]:
        return tuple(self._tasks)


class GraphExecutor:
    """Executes :class:`TaskGraph` instances on a persistent worker pool.

    One executor serves many graphs (one per training batch); the worker
    threads outlive individual :meth:`run` calls, so graph execution adds
    no thread start/join cost to the batch.  ``workers=0`` executes every
    graph inline on the calling thread in deterministic topological order
    (ties broken by node id), making it the reference schedule that the
    pooled schedules must match bit-for-bit.
    """

    def __init__(self, workers: int = 0, name: str = "graph") -> None:
        self.workers = max(0, int(workers))
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False
        # Per-run state, loaded under the lock by run().
        self._tasks: Tuple[GraphTask, ...] = ()
        self._ready: List[int] = []
        self._remaining: Dict[int, int] = {}
        self._successors: Dict[int, List[int]] = {}
        self._pending = 0
        self._errors: List[BaseException] = []
        self._cancelled = 0
        self._done = 0
        self._task_s = 0.0
        self._kind_s: Dict[str, float] = {}
        # Concurrency spans: count of running nodes, busy (>=1) and
        # overlapped (>=2) interval starts.
        self._running = 0
        self._busy_since = 0.0
        self._busy_span_s = 0.0
        self._multi_since = 0.0
        self._hidden_s = 0.0
        self._threads: List[threading.Thread] = []
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop, daemon=True, name=f"{name}-{i}"
            )
            t.start()
            self._threads.append(t)

    # -- public API ------------------------------------------------------
    def run(self, graph: TaskGraph) -> GraphStats:
        """Execute every node of ``graph``; returns the run's stats.

        Blocks until the graph drained.  The first node exception is
        re-raised as :class:`WorkerError` (original chained) after the
        fail-fast drain — never on a worker thread.
        """
        if self._closed:
            raise RuntimeError("run() on a closed GraphExecutor")
        tasks = graph.tasks
        self._validate_acyclic(tasks)
        start_wall = time.perf_counter()
        if self.workers == 0:
            stats = self._run_inline(tasks, start_wall)
        else:
            stats = self._run_pooled(tasks, start_wall)
        if self._errors:
            errors, self._errors = self._errors, []
            raise WorkerError(
                f"{len(errors)} graph node(s) failed: {errors[0]!r}"
            ) from errors[0]
        return stats

    @property
    def failed(self) -> bool:
        with self._lock:
            return bool(self._errors)

    def close(self) -> None:
        """Stop the worker threads (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads = []

    def __enter__(self) -> "GraphExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared machinery ------------------------------------------------
    @staticmethod
    def _validate_acyclic(tasks: Tuple[GraphTask, ...]) -> None:
        # TaskGraph.add only accepts backward edges, so this is a cheap
        # invariant re-check rather than a real cycle hunt.
        for task in tasks:
            for d in task.deps:
                if d >= task.task_id:
                    raise ValueError(f"cycle through node {task.name}")

    def _run_inline(
        self, tasks: Tuple[GraphTask, ...], start_wall: float
    ) -> GraphStats:
        remaining = {t.task_id: len(t.deps) for t in tasks}
        successors: Dict[int, List[int]] = {t.task_id: [] for t in tasks}
        for t in tasks:
            for d in t.deps:
                successors[d].append(t.task_id)
        ready = [tid for tid, n in remaining.items() if n == 0]
        heapq.heapify(ready)
        done = 0
        cancelled = 0
        task_s = 0.0
        kind_s: Dict[str, float] = {}
        while ready:
            tid = heapq.heappop(ready)
            task = tasks[tid]
            if self._errors:
                cancelled += 1
            else:
                t0 = time.perf_counter()
                try:
                    task.fn(*task.args, **task.kwargs)
                except Exception as exc:  # surfaced by run()
                    self._errors.append(exc)
                duration = time.perf_counter() - t0
                task_s += duration
                kind_s[task.kind] = kind_s.get(task.kind, 0.0) + duration
                done += 1
            for succ in successors[tid]:
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    heapq.heappush(ready, succ)
        return GraphStats(
            tasks=done,
            task_s=task_s,
            busy_span_s=task_s,
            hidden_s=0.0,
            wall_s=time.perf_counter() - start_wall,
            cancelled=cancelled,
            kind_s=kind_s,
        )

    def _run_pooled(
        self, tasks: Tuple[GraphTask, ...], start_wall: float
    ) -> GraphStats:
        with self._cond:
            if self._pending:
                raise RuntimeError("GraphExecutor.run() is not reentrant")
            self._tasks = tasks
            self._remaining = {t.task_id: len(t.deps) for t in tasks}
            self._successors = {t.task_id: [] for t in tasks}
            for t in tasks:
                for d in t.deps:
                    self._successors[d].append(t.task_id)
            self._ready = [
                tid for tid, n in self._remaining.items() if n == 0
            ]
            heapq.heapify(self._ready)
            self._pending = len(tasks)
            self._done = 0
            self._cancelled = 0
            self._task_s = 0.0
            self._kind_s = {}
            self._busy_span_s = 0.0
            self._hidden_s = 0.0
            self._cond.notify_all()
            self._cond.wait_for(lambda: self._pending == 0)
            stats = GraphStats(
                tasks=self._done,
                task_s=self._task_s,
                busy_span_s=self._busy_span_s,
                hidden_s=self._hidden_s,
                wall_s=time.perf_counter() - start_wall,
                cancelled=self._cancelled,
                kind_s=dict(self._kind_s),
            )
            self._tasks = ()
        return stats

    # -- the worker side -------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(lambda: self._ready or self._closed)
                if not self._ready:
                    if self._closed:
                        return
                    continue
                tid = heapq.heappop(self._ready)
                task = self._tasks[tid]
                if self._errors:  # fail-fast drain
                    self._cancelled += 1
                    self._complete_locked(tid)
                    continue
                now = time.perf_counter()
                if self._running == 0:
                    self._busy_since = now
                elif self._running == 1:
                    self._multi_since = now
                self._running += 1
            t0 = time.perf_counter()
            error: Optional[BaseException] = None
            try:
                task.fn(*task.args, **task.kwargs)
            except Exception as exc:  # noqa: BLE001 — surfaced by run()
                error = exc
            duration = time.perf_counter() - t0
            with self._cond:
                now = time.perf_counter()
                self._running -= 1
                if self._running == 0:
                    self._busy_span_s += now - self._busy_since
                elif self._running == 1:
                    self._hidden_s += now - self._multi_since
                self._done += 1
                self._task_s += duration
                self._kind_s[task.kind] = (
                    self._kind_s.get(task.kind, 0.0) + duration
                )
                if error is not None:
                    self._errors.append(error)
                self._complete_locked(tid)

    def _complete_locked(self, tid: int) -> None:
        """Resolve ``tid``'s successors and wake waiters (lock held)."""
        for succ in self._successors[tid]:
            self._remaining[succ] -= 1
            if self._remaining[succ] == 0:
                heapq.heappush(self._ready, succ)
        self._pending -= 1
        self._cond.notify_all()
