"""`OverlapExecutor` — the worker pool behind real overlapped CPU Adam.

Execution model (§4.2.2 made literal):

- the *training thread* runs the GPU-side work of microbatch ``j+1``
  (render forward/backward, gradient scatter);
- ``submit()`` hands the finalized-chunk CPU-Adam task of microbatch ``j``
  to a small pool of worker threads through a **double-buffered task
  queue**: at most ``queue_depth`` (default 2 — one executing, one staged)
  tasks may be pending, so a slow CPU Adam applies backpressure to the
  producer instead of growing an unbounded backlog;
- ``barrier()`` is the batch-end synchronization point: it blocks until
  every submitted task finished and re-raises the first worker exception
  (wrapped in :class:`WorkerError`) if any task crashed.

Fail-fast on worker crash: once any task has errored, later ``submit()``
calls and already-queued tasks are *cancelled* (counted in
``ExecutorStats.cancelled``) instead of executed.  Because callers write
through the submitted tasks into shared parameter/optimizer arrays, a
batch whose task ``j`` crashed must not let tasks ``j+1..`` keep
mutating state behind the imminent :class:`WorkerError` — the barrier
then re-raises with every store exactly as the completed tasks left it,
so the engine's recovery path restores from a consistent boundary.  The
error (and the cancelling behaviour) clears when ``barrier()`` re-raises.

Why threads work here: the tasks are NumPy gather/update/scatter kernels,
which release the GIL for the bulk of their runtime, so the chunk update
genuinely executes while the training thread is inside the rasterizer's
BLAS calls.  Correctness does not depend on timing — callers only submit
tasks over pairwise-disjoint row sets (the Adam chunks ``F_1..F_B``), so
any interleaving produces bit-identical arrays, and the barrier makes the
batch boundary sequentially consistent.

Measured-overlap accounting: the executor clocks every task's execution
time (``task_s``), the wall-clock span during which *at least one* task
was executing (``busy_span_s`` — the union of task intervals, so two
concurrent workers do not double-count), and every second the
*submitting* thread spent blocked on the runtime (queue backpressure +
barrier waits, ``blocked_s``).  ``busy_span_s - blocked_s`` is the
wall-clock time the runtime actually hid under the training thread's
compute — reported per batch as ``ExecutorStats.hidden_s`` and surfaced
as ``PerfCounters.overlap_hidden_s``.

``workers=0`` is the synchronous fallback: ``submit`` runs the task inline
on the calling thread (bit-identical results, zero hidden seconds), so a
single code path serves both execution modes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple


class WorkerError(RuntimeError):
    """A task submitted to :class:`OverlapExecutor` raised; re-raised at
    the batch-end barrier with the original exception chained."""


@dataclass(frozen=True)
class ExecutorStats:
    """One drain interval's accounting (typically one training batch)."""

    #: Tasks that finished in the interval.
    tasks: int
    #: Summed task execution wall time (the CPU-Adam seconds; concurrent
    #: workers' seconds add up, like user CPU time).
    task_s: float
    #: Wall-clock span during which >= 1 task was executing (union of
    #: task intervals — never exceeds the interval's wall time).
    busy_span_s: float
    #: Seconds the submitting thread spent blocked on the runtime
    #: (queue backpressure + barrier waits).
    blocked_s: float
    #: Wall-clock seconds of task execution genuinely hidden under the
    #: submitting thread's other work: ``max(0, busy_span_s - blocked_s)``
    #: with workers, 0 inline.
    hidden_s: float
    #: Tasks cancelled (never executed) because an earlier task in the
    #: interval crashed — the executor's fail-fast drain.
    cancelled: int = 0


class OverlapExecutor:
    """A small worker-pool executor with a double-buffered task queue.

    Not a general thread pool: tasks are expected to be short, GIL-releasing
    array kernels over disjoint data, the queue is deliberately shallow
    (``queue_depth``), and the only synchronization primitive offered is
    the full :meth:`barrier` — exactly the contract overlapped CPU Adam
    needs, and nothing that could reorder observable results.
    """

    def __init__(
        self,
        workers: int = 1,
        queue_depth: int = 2,
        name: str = "overlap",
    ) -> None:
        self.workers = max(0, int(workers))
        self.queue_depth = max(1, int(queue_depth))
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: "deque[Tuple[Callable, tuple, dict]]" = deque()
        self._pending = 0
        self._errors: List[BaseException] = []
        self._closed = False
        self._tasks = 0
        self._task_s = 0.0
        self._blocked_s = 0.0
        self._cancelled = 0
        # Busy-span bookkeeping: count of currently-executing tasks and
        # the instant the pool last transitioned idle -> busy.
        self._running = 0
        self._busy_since = 0.0
        self._busy_span_s = 0.0
        self._threads: List[threading.Thread] = []
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop, daemon=True, name=f"{name}-{i}"
            )
            t.start()
            self._threads.append(t)

    # -- the producer side ----------------------------------------------
    def submit(self, fn: Callable, *args: Any, **kwargs: Any) -> None:
        """Enqueue ``fn(*args, **kwargs)``.

        With workers, blocks while the double buffer is full (backpressure
        time counts as *not hidden*); inline mode runs the task on the
        calling thread.  Task exceptions — inline ones included — are
        deferred to :meth:`barrier`, so both modes share one error surface.
        """
        if self._closed:
            raise RuntimeError("submit() on a closed OverlapExecutor")
        if self.workers == 0:
            if self._errors:  # fail-fast: don't mutate past a crash
                self._cancelled += 1
                return
            start = time.perf_counter()
            try:
                fn(*args, **kwargs)
            except Exception as exc:  # surfaced at the barrier
                self._errors.append(exc)
            finally:
                duration = time.perf_counter() - start
                self._task_s += duration
                self._busy_span_s += duration  # on the calling thread
                self._tasks += 1
            return
        with self._cond:
            if self._errors:  # fail-fast: don't mutate past a crash
                self._cancelled += 1
                return
            if len(self._queue) >= self.queue_depth:
                start = time.perf_counter()
                self._cond.wait_for(
                    lambda: len(self._queue) < self.queue_depth
                    or self._closed
                    or bool(self._errors)
                )
                self._blocked_s += time.perf_counter() - start
            if self._closed:
                raise RuntimeError("submit() on a closed OverlapExecutor")
            if self._errors:
                self._cancelled += 1
                return
            self._queue.append((fn, args, kwargs))
            self._pending += 1
            self._cond.notify_all()

    def barrier(self) -> float:
        """Wait until every submitted task completed; returns the seconds
        spent waiting.

        The first worker exception (in completion order) is re-raised
        here, wrapped in :class:`WorkerError` — never on the worker
        thread, never silently dropped.
        """
        start = time.perf_counter()
        with self._cond:
            self._cond.wait_for(lambda: self._pending == 0)
            waited = time.perf_counter() - start
            self._blocked_s += waited
            if self._errors:
                errors, self._errors = self._errors, []
                raise WorkerError(
                    f"{len(errors)} overlapped task(s) failed: {errors[0]!r}"
                ) from errors[0]
        return waited

    def drain_stats(self) -> ExecutorStats:
        """Return and reset the interval counters (call once per batch,
        after :meth:`barrier`).

        Raises :class:`RuntimeError` after :meth:`close`: a closed
        executor's counters are frozen mid-interval (workers joined, no
        barrier can complete the batch), so returning them would hand the
        caller partial numbers that look like a finished batch.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError(
                    "drain_stats() on a closed OverlapExecutor: the "
                    "interval counters are partial once the workers have "
                    "been joined — drain before close()"
                )
            # Inline mode runs every task on the calling thread: nothing
            # is ever hidden and nothing ever blocks *on the runtime* (the
            # barrier returns immediately) — report exact zeros rather
            # than the epsilon wait times the condition variable accrues.
            inline = self.workers == 0
            stats = ExecutorStats(
                tasks=self._tasks,
                task_s=self._task_s,
                busy_span_s=self._busy_span_s,
                blocked_s=0.0 if inline else self._blocked_s,
                hidden_s=(
                    0.0
                    if inline
                    else max(0.0, self._busy_span_s - self._blocked_s)
                ),
                cancelled=self._cancelled,
            )
            self._tasks = 0
            self._task_s = 0.0
            self._busy_span_s = 0.0
            self._blocked_s = 0.0
            self._cancelled = 0
        return stats

    @property
    def failed(self) -> bool:
        """Whether a not-yet-re-raised task error is pending (after which
        new submissions cancel until :meth:`barrier` surfaces it)."""
        with self._lock:
            return bool(self._errors)

    # -- the worker side -------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(lambda: self._queue or self._closed)
                if not self._queue:
                    if self._closed:
                        return
                    continue
                fn, args, kwargs = self._queue.popleft()
                if self._errors:  # drain: cancel work queued behind a crash
                    self._cancelled += 1
                    self._pending -= 1
                    self._cond.notify_all()
                    continue
                if self._running == 0:
                    self._busy_since = time.perf_counter()
                self._running += 1
                self._cond.notify_all()  # wake a backpressured submit
            start = time.perf_counter()
            error: Optional[BaseException] = None
            try:
                fn(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 — surfaced at barrier
                error = exc
            duration = time.perf_counter() - start
            with self._cond:
                self._tasks += 1
                self._task_s += duration
                self._running -= 1
                if self._running == 0:
                    self._busy_span_s += (
                        time.perf_counter() - self._busy_since
                    )
                if error is not None:
                    self._errors.append(error)
                self._pending -= 1
                self._cond.notify_all()

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Drain outstanding tasks and stop the workers (idempotent).

        Pending errors are dropped — call :meth:`barrier` first if the
        caller needs them surfaced."""
        with self._cond:
            if self._closed:
                return
            self._cond.wait_for(lambda: self._pending == 0)
            self._closed = True
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads = []

    def __enter__(self) -> "OverlapExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
