"""`repro.runtime` — the asynchronous execution runtime.

The paper's headline optimization (§4.2.2, §5.4) *hides* the CPU Adam of
finalized chunks behind the GPU compute of later microbatches.  Before
this package existed the repo only simulated that: the "overlapped" chunk
ran inline on the calling thread.  :class:`OverlapExecutor` makes the
overlap real — a small worker pool with a double-buffered task queue runs
the finalized-chunk CPU Adam (and store writeback staging) concurrently
with the next microbatch's forward/backward.  NumPy/BLAS release the GIL
inside their kernels, so this yields genuine wall-clock overlap on stock
CPython, and a batch-end barrier guarantees results remain bit-identical
to sequential execution (chunks touch pairwise-disjoint rows, so no
ordering between them is observable).

The adaptive runtime (ROADMAP item 5) generalizes this into a dependency
:class:`TaskGraph` executed by :class:`GraphExecutor`: assembly, raster
forward/backward, gradient retirement, and Adam chunks become explicit
nodes, and the worker pool may run them in any dependency-respecting
order — bit-identical by the same disjointness arguments, pinned by
``tests/runtime/test_graph_equivalence.py``.
"""

from repro.runtime.executor import ExecutorStats, OverlapExecutor, WorkerError
from repro.runtime.graph import GraphExecutor, GraphStats, GraphTask, TaskGraph

__all__ = [
    "OverlapExecutor",
    "ExecutorStats",
    "WorkerError",
    "TaskGraph",
    "GraphTask",
    "GraphExecutor",
    "GraphStats",
]
