"""The engine registry: the single source of truth for training systems.

Engines self-register with the :func:`register_engine` decorator::

    @register_engine("clm", description="sparsity-guided CPU offloading")
    class CLMEngine(EngineBase):
        ...

and consumers construct them by name::

    engine = create_engine("clm", model, cameras, config)

Anything callable as ``factory(model, cameras, config) -> Engine`` can be
registered — a class, or a plain function for configuration variants (the
"enhanced" baseline is ``GpuOnlyEngine`` with pre-rendering culling turned
on).  Adding a fifth system is a one-file change: subclass
:class:`repro.engines.base.EngineBase`, decorate it, and every consumer
(``Trainer``, the CLI, ``TrainingSession``) picks it up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.config import EngineConfig


class UnknownEngineError(ValueError):
    """Raised by :func:`create_engine` for names not in the registry."""


@dataclass(frozen=True)
class EngineEntry:
    name: str
    factory: Callable
    description: str


_REGISTRY: Dict[str, EngineEntry] = {}


def _ensure_builtin_engines() -> None:
    """Import the built-in engine modules so their registrations run.

    Lets ``from repro.engines.registry import create_engine`` work even
    when the caller never imported :mod:`repro.engines` itself.
    """
    from repro.engines import clm, clm_sharded, gpu_only, naive  # noqa: F401


def register_engine(name: str, *, description: str = ""):
    """Class/factory decorator adding an engine to the registry.

    ``description`` is the one-line summary shown by ``repro engines`` and
    :func:`engine_descriptions`; it defaults to the factory's first
    docstring line.
    """

    def decorator(factory: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(
                f"engine '{name}' is already registered "
                f"(by {_REGISTRY[name].factory!r})"
            )
        summary = description or (factory.__doc__ or "").strip().split("\n")[0]
        _REGISTRY[name] = EngineEntry(name, factory, summary)
        return factory

    return decorator


#: Engines shipped with the package.  Unregistering one would be permanent
#: for the process (their modules stay cached in sys.modules, so the
#: decorators never re-run), so unregister_engine refuses them.
_BUILTIN_ENGINES = ("clm", "clm_sharded", "naive", "baseline", "enhanced")


def unregister_engine(name: str) -> None:
    """Remove a registered engine (mainly for tests/plugins).

    Built-in engines cannot be removed; see ``_BUILTIN_ENGINES``.
    """
    if name in _BUILTIN_ENGINES:
        raise ValueError(f"cannot unregister built-in engine '{name}'")
    _REGISTRY.pop(name, None)


def available_engines() -> Tuple[str, ...]:
    """Registered engine names, in registration order."""
    _ensure_builtin_engines()
    return tuple(_REGISTRY)


def engine_descriptions() -> Dict[str, str]:
    """``{name: one-line description}`` for every registered engine."""
    _ensure_builtin_engines()
    return {name: entry.description for name, entry in _REGISTRY.items()}


def create_engine(
    name: str,
    model,
    cameras: Sequence,
    config: Optional[EngineConfig] = None,
):
    """Construct the engine registered under ``name``.

    Raises :class:`UnknownEngineError` (a ``ValueError``) with the list of
    known names when ``name`` is not registered.
    """
    _ensure_builtin_engines()
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise UnknownEngineError(
            f"unknown engine '{name}'; choose from {available_engines()}"
        ) from None
    return entry.factory(model, cameras, config)
