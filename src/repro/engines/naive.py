"""Naive (ZeRO-Offload-style) offloading — the paper's Figure 3 strawman.

Per batch: transfer *all* parameters CPU->GPU, train the batch one image at
a time with gradient accumulation (activation saving), transfer *all*
gradients GPU->CPU, then run CPU Adam.  No sparsity, no pipelining, no
caching — the comparison point that isolates what CLM's techniques buy
(§6.1 "Naive Offloading" is configured identically: pinned memory, the same
CPU Adam, pre-rendering frustum culling for the kernels).

Functional note: the paper's naive system runs CPU Adam over every
Gaussian; with per-row sparse-Adam state that is *numerically equivalent*
to updating the touched union (untouched rows have zero gradient and zero
moments here because gradients are zeroed per batch), so we update the
union and keep quality results comparable across engines.  The *cost*
models (timed path) still charge the dense full-model Adam the paper
describes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core import attributes
from repro.core.memory_model import (
    ACT_PER_GAUSSIAN,
    ACT_PER_PIXEL,
    NAIVE_MODEL_BPG,
)
from repro.engines.base import BatchResult, EngineBase, PositionGradHook
from repro.engines.registry import register_engine
from repro.gaussians.model import GaussianModel
from repro.optim.sparse_adam import SparseAdam


@register_engine(
    "naive",
    description="naive offloading: whole-model CPU<->GPU transfers every "
    "batch, dense CPU Adam (Figure 3 strawman)",
)
class NaiveOffloadEngine(EngineBase):
    """Whole-model offloading with batch-granularity transfers."""

    def _setup(self, model: GaussianModel) -> None:
        # CPU master copy ("pinned"): all 59 floats live here between steps.
        self.cpu_model = model.clone()
        self.optimizer = SparseAdam(
            self.cpu_model.parameters(), config=self.config.adam
        )
        if self.pool is not None:
            self._allocate()

    def _culling_arrays(self):
        return (
            self.cpu_model.positions,
            self.cpu_model.log_scales,
            self.cpu_model.quaternions,
        )

    def _allocate(self) -> None:
        assert self.pool is not None
        n = self.cpu_model.num_gaussians
        self.pool.alloc("naive.params_and_grads", NAIVE_MODEL_BPG * n)
        rho_max = self._max_frustum_fraction()
        self.pool.alloc(
            "naive.activations",
            ACT_PER_GAUSSIAN * rho_max * n + ACT_PER_PIXEL * self._num_pixels,
        )

    @property
    def num_gaussians(self) -> int:
        return self.cpu_model.num_gaussians

    def snapshot_model(self) -> GaussianModel:
        return self.cpu_model.clone()

    def _eval_model(self) -> GaussianModel:
        return self.cpu_model  # CPU master copy; no clone for read-only use

    # ------------------------------------------------------------------
    def _train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook] = None,
    ) -> BatchResult:
        n = self.num_gaussians
        # The naive system runs the sampled batch as-is — an identity-order
        # plan (no TSP, no caching semantics apply to its bulk transfers),
        # but the same planner produces it, so the touched union and the
        # per-view working sets share CLM's semantics exactly.
        plan = self.plan_batch(view_ids, strategy="identity")

        # Step 1 (Figure 3): load ALL parameters to the GPU.
        gpu_model = self.cpu_model.clone()
        grads = gpu_model.zero_gradients()

        # Step 2: per-image training with gradient accumulation; the naive
        # system also adopts pre-rendering frustum culling (§6.1).
        per_view_loss, total_loss = self._accumulate_planned(
            plan, targets, gpu_model, grads, position_grad_hook
        )

        # Steps 3-4: store ALL gradients back; CPU Adam updates parameters.
        touched = self._finalize_sparse_adam(
            self.optimizer, self.cpu_model.parameters(), grads, plan.touched
        )
        return BatchResult(
            loss=total_loss,
            per_view_loss=per_view_loss,
            touched_gaussians=int(touched.size),
            order=list(plan.order),
            loaded_gaussians=n,
            stored_gaussians=n,
            # All 59 floats of every Gaussian cross the link (Figure 14's
            # "Naive Offloading" bars equal N x 59 x 4 bytes).
            loaded_bytes=n * attributes.total_floats() * 4,
            stored_bytes=n * attributes.total_floats() * 4,
        )

    def rebuild(self, model: GaussianModel, keep_rows: np.ndarray) -> None:
        self.cpu_model = model.clone()
        self.optimizer.resize(self.cpu_model.parameters(), keep_rows)
        if self.pool is not None:
            self._allocate()
