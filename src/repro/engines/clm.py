"""The CLM engine: functional offloaded training (paper §4, Figure 6).

One :meth:`CLMEngine.train_batch` call executes the full CLM step on real
NumPy arrays:

1. frustum-cull every view of the batch against the GPU-resident critical
   attributes (§4.1, §5.1);
2. obtain the :class:`repro.planning.BatchPlan` for the culled sets from
   the engine's :class:`repro.planning.BatchPlanner` — microbatch order
   (TSP by default, §4.2.3), precise-caching transfer steps (§4.2.1) and
   overlapped-Adam finalization chunks (§4.2.2), memoized by the plan
   cache;
3. execute the plan's microbatch loop: assemble the working set (cache copies +
   pinned-store loads), render, compute loss, backprop, accumulate
   gradients (GPU-resident for critical attributes, working-buffer for
   non-critical with carried accumulation), offload finalized gradients,
   and *submit* the eager CPU-Adam chunk to the overlap runtime — with
   ``config.overlap_workers >= 1`` the fused packed-row update of chunk
   ``F_j`` executes on a worker thread while the training thread renders
   microbatch ``j+1`` (§4.2.2 for real, not simulated);
4. finish the batch: last Adam chunk, the GPU-side fused Adam update of
   the critical attributes, then the batch-end barrier that joins every
   in-flight chunk and surfaces worker errors.

Both optimizers are fused :class:`repro.optim.packed_adam.PackedSparseAdam`
instances over the stores' packed row layouts — one gather, one fused
update with per-column learning rates, one scatter per chunk.  Because the
kernel arithmetic is shared with the per-name sparse Adam and the chunks
are pairwise disjoint, the result is bit-identical to GPU-only training of
the same batch for any worker count — checked by
``tests/core/test_equivalence.py`` and ``tests/runtime/``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core import attributes
from repro.core.stores import (
    GpuCriticalStore,
    GpuWorkingSet,
    PinnedParameterStore,
)
from repro.engines.base import BatchResult, EngineBase, PositionGradHook
from repro.engines.registry import register_engine
from repro.gaussians.model import GaussianModel
from repro.optim.packed_adam import PackedSparseAdam
from repro.runtime import OverlapExecutor

CRITICAL = ("positions", "log_scales", "quaternions")
NONCRITICAL = ("sh", "opacity_logits")


@register_engine(
    "clm",
    description="CLM offloading: critical attributes GPU-resident, precise "
    "caching, TSP ordering, overlapped CPU Adam (§4)",
)
class CLMEngine(EngineBase):
    """Offloaded 3DGS training over split parameter stores."""

    def _setup(self, model: GaussianModel) -> None:
        self.gpu_store = GpuCriticalStore(
            model, pool=self.pool, grad_dtype=self.config.grad_dtype
        )
        self.cpu_store = PinnedParameterStore(
            model, grad_dtype=self.config.grad_dtype
        )
        self.sh_degree = model.sh_degree
        # Fused packed-row optimizers matching the stores' row layouts:
        # critical (N, 10), non-critical (N, 3K+1).
        self.adam_critical = PackedSparseAdam(
            {name: model.parameters()[name].shape[1:] for name in CRITICAL},
            model.num_gaussians,
            config=self.config.adam,
            kernel_backend=self.kernel_backend,
        )
        # pad_to: moments share the pinned rows' cache-line-aligned width,
        # so every chunk operand moves as whole contiguous rows.
        self.adam_noncritical = PackedSparseAdam(
            {"sh": model.sh.shape[1:], "opacity_logits": ()},
            model.num_gaussians,
            config=self.config.adam,
            pad_to=self.cpu_store.row_floats,
            kernel_backend=self.kernel_backend,
        )
        #: The overlap runtime.  ``overlap_workers == 0`` degrades to the
        #: synchronous inline fallback inside the same code path.
        self.runtime = OverlapExecutor(
            workers=self.config.overlap_workers, name="clm-adam"
        )

    def _culling_arrays(self):
        return (
            self.gpu_store.positions,
            self.gpu_store.log_scales,
            self.gpu_store.quaternions,
        )

    # ------------------------------------------------------------------
    @property
    def num_gaussians(self) -> int:
        return self.gpu_store.num_rows

    def snapshot_model(self) -> GaussianModel:
        """Reassemble the full model from both stores (for eval/densify)."""
        nc = self.cpu_store.gather_params(np.arange(self.num_gaussians))
        return GaussianModel(
            positions=self.gpu_store.positions.copy(),
            log_scales=self.gpu_store.log_scales.copy(),
            quaternions=self.gpu_store.quaternions.copy(),
            sh=nc["sh"],
            opacity_logits=nc["opacity_logits"],
            sh_degree=self.sh_degree,
        )

    # ------------------------------------------------------------------
    def _train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook] = None,
    ) -> BatchResult:
        """One full CLM training step over ``view_ids``.

        ``targets`` maps view id -> ground-truth image.
        ``position_grad_hook(view_id, working_set, position_grads)`` lets
        the trainer collect densification statistics without the engine
        knowing about them.

        Concurrency contract: every task handed to :attr:`runtime` updates
        a *finalized* chunk — rows no later microbatch loads, stores, or
        re-finalizes (the plan invariants ``validate`` asserts) — so the
        worker threads and the training thread never touch the same rows,
        and the barrier below is the only ordering the batch needs.
        """
        cfg = self.config
        batch = len(view_ids)
        plan = self.plan_batch(view_ids)
        touched = plan.touched
        self.cpu_store.zero_grads(touched)
        self.gpu_store.zero_grads(touched)

        working = GpuWorkingSet(
            self.cpu_store,
            self.gpu_store,
            pool=self.pool,
            num_pixels=self._num_pixels,
        )
        carried = None
        total_loss = 0.0
        per_view_loss: Dict[int, float] = {}

        for step, chunk in zip(plan.steps, plan.adam_chunks):
            model_i = working.assemble(
                step.working_set, step.loads, step.cached, carried
            )
            cam = self.cameras[step.view_id]
            loss, grads = self._forward_backward(
                cam, model_i, targets[step.view_id], batch
            )
            per_view_loss[step.view_id] = loss
            total_loss += loss / batch
            working.add_grads(grads)
            if position_grad_hook is not None:
                position_grad_hook(
                    step.view_id, step.working_set, grads["positions"]
                )
            carried = working.retire(step.stores, step.carried)
            if cfg.enable_overlap_adam and chunk.size:
                # Chunk F_j is final: its CPU Adam (+ writeback staging)
                # runs on the pool while the next microbatch renders.
                self.runtime.submit(self._apply_noncritical_adam, chunk)

        if not cfg.enable_overlap_adam:
            # Ablation: all updates at batch end (functionally identical,
            # nothing to hide them under — the barrier follows at once).
            for chunk in plan.adam_chunks:
                if chunk.size:
                    self.runtime.submit(self._apply_noncritical_adam, chunk)
        # The GPU-side critical update is independent of the pinned store,
        # so it too proceeds under any still-running noncritical chunks.
        self._apply_critical_adam(touched)
        self.runtime.barrier()
        stats = self.runtime.drain_stats()
        self._step_adam_s += stats.task_s
        self._step_overlap_hidden_s += stats.hidden_s
        working.release()

        return BatchResult(
            loss=total_loss,
            per_view_loss=per_view_loss,
            touched_gaussians=int(touched.size),
            order=list(plan.order),
            loaded_gaussians=working.counters.loaded_gaussians,
            stored_gaussians=working.counters.stored_gaussians,
            cached_gaussians=working.counters.cached_gaussians,
            loaded_bytes=attributes.noncritical_bytes(
                working.counters.loaded_gaussians
            ),
            stored_bytes=attributes.noncritical_bytes(
                working.counters.stored_gaussians
            ),
            adam_chunk_sizes=plan.adam_chunk_sizes,
        )

    # ------------------------------------------------------------------
    def _apply_noncritical_adam(self, rows: np.ndarray) -> None:
        """Fused CPU Adam over one finalized chunk (the §5.4 thread's
        work): one gather from the pinned packed rows, one fused update,
        one scatter back — run on an :class:`OverlapExecutor` worker when
        the overlap runtime has one."""
        if rows.size == 0:
            return
        # Pass the full padded pinned buffer: whole cache-line-aligned rows
        # gather/scatter as contiguous memcpys (padding rides along).
        self.adam_noncritical.step_packed(
            self.cpu_store.params, self.cpu_store.grads, rows
        )

    def _apply_critical_adam(self, rows: np.ndarray) -> None:
        """GPU-side fused Adam over the resident packed critical rows."""
        if rows.size == 0:
            return
        start = time.perf_counter()
        self.adam_critical.step_packed(
            self.gpu_store.packed_params, self.gpu_store.packed_grads, rows
        )
        self._step_adam_s += time.perf_counter() - start

    # ------------------------------------------------------------------
    def render_view(self, view_id: int):
        """Offloaded *inference*: render one view loading only its
        in-frustum working set from the CPU store.

        The paper's abstract claim ("render a large scene that requires 102
        million Gaussians on a single RTX 4090") is exactly this path —
        GPU memory holds critical attributes plus one view's non-critical
        slice, never the full model.
        """
        # Ordering is meaningless for one view; identity keeps the plan
        # cacheable (the 'random' strategy is cache-exempt) and draws
        # nothing from the RNG stream that orders training batches.
        plan = self.plan_batch([view_id], strategy="identity")
        step = plan.steps[0]
        working = GpuWorkingSet(
            self.cpu_store, self.gpu_store, pool=self.pool,
            num_pixels=self._num_pixels,
        )
        model_i = working.assemble(step.working_set, step.loads, step.cached)
        result = self._render(
            self.cameras[view_id], model_i, self.raster_settings
        )
        working.release()
        return result

    def rebuild(self, model: GaussianModel, keep_rows: np.ndarray) -> None:
        # No chunk can be in flight here: rebuild only runs between
        # batches, after train_batch's barrier.
        pool = self.pool
        if pool is not None:
            self.gpu_store.release()
        self.gpu_store = GpuCriticalStore(
            model, pool=pool, grad_dtype=self.config.grad_dtype
        )
        self.cpu_store = PinnedParameterStore(
            model, grad_dtype=self.config.grad_dtype
        )
        self.sh_degree = model.sh_degree
        self.adam_critical.resize(keep_rows)
        self.adam_noncritical.resize(keep_rows)

    def close(self) -> None:
        """Stop the overlap runtime's worker threads (idempotent; the
        workers are daemons, so skipping this never hangs interpreter
        shutdown)."""
        self.runtime.close()

    def __del__(self) -> None:  # best-effort thread cleanup
        try:
            self.runtime.close()
        except Exception:
            pass
