"""The CLM engine: functional offloaded training (paper §4, Figure 6).

One :meth:`CLMEngine.train_batch` call executes the full CLM step on real
NumPy arrays:

1. frustum-cull every view of the batch against the GPU-resident critical
   attributes (§4.1, §5.1);
2. obtain the :class:`repro.planning.BatchPlan` for the culled sets from
   the engine's :class:`repro.planning.BatchPlanner` — microbatch order
   (TSP by default, §4.2.3), precise-caching transfer steps (§4.2.1) and
   overlapped-Adam finalization chunks (§4.2.2), memoized by the plan
   cache;
3. execute the plan's microbatch loop: assemble the working set (cache copies +
   pinned-store loads), render, compute loss, backprop, accumulate
   gradients (GPU-resident for critical attributes, working-buffer for
   non-critical with carried accumulation), offload finalized gradients,
   and *submit* the eager CPU-Adam chunk to the overlap runtime — with
   ``config.overlap_workers >= 1`` the fused packed-row update of chunk
   ``F_j`` executes on a worker thread while the training thread renders
   microbatch ``j+1`` (§4.2.2 for real, not simulated);
4. finish the batch: last Adam chunk, the GPU-side fused Adam update of
   the critical attributes, then the batch-end barrier that joins every
   in-flight chunk and surfaces worker errors.

Both optimizers are fused :class:`repro.optim.packed_adam.PackedSparseAdam`
instances over the stores' packed row layouts — one gather, one fused
update with per-column learning rates, one scatter per chunk.  Because the
kernel arithmetic is shared with the per-name sparse Adam and the chunks
are pairwise disjoint, the result is bit-identical to GPU-only training of
the same batch for any worker count — checked by
``tests/core/test_equivalence.py`` and ``tests/runtime/``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.autotune import MeasuredBatch
from repro.core import attributes
from repro.core.stores import (
    GpuCriticalStore,
    GpuWorkingSet,
    PinnedParameterStore,
)
from repro.engines.base import BatchResult, EngineBase, PositionGradHook
from repro.engines.registry import register_engine
from repro.gaussians.loss import photometric_loss
from repro.gaussians.model import GaussianModel
from repro.optim.packed_adam import PackedSparseAdam
from repro.runtime import GraphExecutor, OverlapExecutor, TaskGraph

CRITICAL = ("positions", "log_scales", "quaternions")
NONCRITICAL = ("sh", "opacity_logits")


@register_engine(
    "clm",
    description="CLM offloading: critical attributes GPU-resident, precise "
    "caching, TSP ordering, overlapped CPU Adam (§4)",
)
class CLMEngine(EngineBase):
    """Offloaded 3DGS training over split parameter stores."""

    def _setup(self, model: GaussianModel) -> None:
        self.gpu_store = GpuCriticalStore(
            model, pool=self.pool, grad_dtype=self.config.grad_dtype
        )
        self.cpu_store = PinnedParameterStore(
            model, grad_dtype=self.config.grad_dtype
        )
        self.sh_degree = model.sh_degree
        # Fused packed-row optimizers matching the stores' row layouts:
        # critical (N, 10), non-critical (N, 3K+1).
        self.adam_critical = PackedSparseAdam(
            {name: model.parameters()[name].shape[1:] for name in CRITICAL},
            model.num_gaussians,
            config=self.config.adam,
            kernel_backend=self.kernel_backend,
        )
        # pad_to: moments share the pinned rows' cache-line-aligned width,
        # so every chunk operand moves as whole contiguous rows.
        self.adam_noncritical = PackedSparseAdam(
            {"sh": model.sh.shape[1:], "opacity_logits": ()},
            model.num_gaussians,
            config=self.config.adam,
            pad_to=self.cpu_store.row_floats,
            kernel_backend=self.kernel_backend,
        )
        #: Runtime pools by worker count.  The adaptive runtime may pick a
        #: different ``overlap_workers`` every batch, so executors are
        #: created lazily per count and kept warm (thread start/join never
        #: lands on the batch path).  ``self.runtime`` stays the
        #: configured-count overlap executor — the stable handle tests and
        #: diagnostics read.
        self._runtimes: Dict[int, OverlapExecutor] = {}
        self._graph_runtimes: Dict[int, GraphExecutor] = {}
        self.runtime = self._overlap_runtime(self.config.overlap_workers)
        #: Per-batch critical (GPU-side) Adam seconds, split out of
        #: ``_step_adam_s`` for the tuner's calibration samples.
        self._step_adam_critical_s = 0.0
        #: The auto-tuner (None unless ``config.autotune``): chooses
        #: workers/group_size/ordering per batch by predicted makespan and
        #: reconciles predictions against measured wall time.
        self.tuner = None
        if self.config.autotune:
            from repro.autotune import AutoTuner, CandidateSpace

            self.tuner = AutoTuner(
                space=CandidateSpace.from_engine_config(self.config),
                num_pixels=max(1, self._num_pixels),
            )

    # -- runtime pools ---------------------------------------------------
    def _overlap_runtime(self, workers: int) -> OverlapExecutor:
        runtime = self._runtimes.get(workers)
        if runtime is None:
            runtime = OverlapExecutor(workers=workers, name=f"clm-adam{workers}")
            self._runtimes[workers] = runtime
        return runtime

    def _graph_runtime(self, workers: int) -> GraphExecutor:
        runtime = self._graph_runtimes.get(workers)
        if runtime is None:
            runtime = GraphExecutor(workers=workers, name=f"clm-graph{workers}")
            self._graph_runtimes[workers] = runtime
        return runtime

    def _culling_arrays(self):
        return (
            self.gpu_store.positions,
            self.gpu_store.log_scales,
            self.gpu_store.quaternions,
        )

    # ------------------------------------------------------------------
    @property
    def num_gaussians(self) -> int:
        return self.gpu_store.num_rows

    def snapshot_model(self) -> GaussianModel:
        """Reassemble the full model from both stores (for eval/densify)."""
        nc = self.cpu_store.gather_params(np.arange(self.num_gaussians))
        return GaussianModel(
            positions=self.gpu_store.positions.copy(),
            log_scales=self.gpu_store.log_scales.copy(),
            quaternions=self.gpu_store.quaternions.copy(),
            sh=nc["sh"],
            opacity_logits=nc["opacity_logits"],
            sh_degree=self.sh_degree,
        )

    # ------------------------------------------------------------------
    def _train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook] = None,
    ) -> BatchResult:
        """One full CLM training step over ``view_ids``.

        ``targets`` maps view id -> ground-truth image.
        ``position_grad_hook(view_id, working_set, position_grads)`` lets
        the trainer collect densification statistics without the engine
        knowing about them.

        With :attr:`tuner` set (``config.autotune``), the batch is planned
        once per candidate ordering (memoized), the tuner picks the
        configuration with the smallest simulator-predicted makespan, and
        after execution the prediction is reconciled against the measured
        wall time and fed back into the cost model.  The tuned knobs are
        execution details only: worker count and slab ``group_size`` never
        change results (bit-identical, pinned by tests), the ordering
        changes the schedule semantics exactly as the ``ordering`` config
        always has.

        ``config.use_task_graph`` selects the dependency task-graph
        executor instead of the submit/barrier overlap loop — same math,
        same bit-identical guarantee.
        """
        cfg = self.config
        self._step_adam_critical_s = 0.0
        batch_start = time.perf_counter()
        choice = None
        if self.tuner is not None:
            plans = {
                ordering: self.plan_batch(view_ids, strategy=ordering)
                for ordering in self.tuner.orderings
            }
            choice = self.tuner.choose(plans)
            plan = plans[choice.config.ordering]
            workers = choice.config.overlap_workers
            self._raster_overrides = {"group_size": choice.config.group_size}
            if choice.config.kernel_backend is not None:
                self._raster_overrides["kernel_backend"] = (
                    choice.config.kernel_backend
                )
            # Key future plans under the tuned slab width (see
            # plan_fingerprint): tuned configs never share a cached plan.
            self.planner.group_size = choice.config.group_size
        else:
            plan = self.plan_batch(view_ids)
            workers = cfg.overlap_workers
        if cfg.use_task_graph:
            result, adam_noncritical_s, hidden_s = self._execute_plan_graph(
                plan, targets, position_grad_hook, workers
            )
        else:
            result, adam_noncritical_s, hidden_s = self._execute_plan(
                plan, targets, position_grad_hook, workers
            )
        if choice is not None:
            measured = MeasuredBatch(
                wall_s=time.perf_counter() - batch_start,
                forward_s=self._step_forward_s,
                backward_s=self._step_backward_s,
                adam_s=adam_noncritical_s,
                critical_adam_s=self._step_adam_critical_s,
                hidden_s=hidden_s,
                working_rows=sum(
                    int(s.working_set.size) for s in plan.steps
                ),
                traffic_rows=(
                    plan.total_loads + plan.total_stores + plan.total_cached
                ),
                chunk_rows=sum(plan.adam_chunk_sizes),
                touched_rows=int(plan.touched.size),
            )
            reconciliation = self.tuner.observe(choice, plan, measured)
            result.autotuned = True
            result.tuned_workers = choice.config.overlap_workers
            result.tuned_group_size = choice.config.group_size
            result.tuned_ordering = choice.config.ordering
            result.tuned_kernel_backend = (
                choice.config.kernel_backend or self.kernel_backend
            )
            result.predicted_makespan_s = choice.predicted_s
            result.autotune_rel_error = reconciliation.relative_error
        return result

    # ------------------------------------------------------------------
    def _execute_plan(
        self,
        plan,
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook],
        workers: int,
    ) -> "tuple[BatchResult, float, float]":
        """The submit/barrier overlap loop (the pre-graph execution path).

        Concurrency contract: every task handed to the runtime updates a
        *finalized* chunk — rows no later microbatch loads, stores, or
        re-finalizes (the plan invariants ``validate`` asserts) — so the
        worker threads and the training thread never touch the same rows,
        and the barrier below is the only ordering the batch needs.

        Returns ``(result, noncritical_adam_s, hidden_s)``.
        """
        cfg = self.config
        runtime = self._overlap_runtime(workers)
        batch = plan.batch_size
        touched = plan.touched
        self.cpu_store.zero_grads(touched)
        self.gpu_store.zero_grads(touched)

        working = GpuWorkingSet(
            self.cpu_store,
            self.gpu_store,
            pool=self.pool,
            num_pixels=self._num_pixels,
        )
        carried = None
        total_loss = 0.0
        per_view_loss: Dict[int, float] = {}

        for step, chunk in zip(plan.steps, plan.adam_chunks):
            model_i = working.assemble(
                step.working_set, step.loads, step.cached, carried
            )
            cam = self.cameras[step.view_id]
            loss, grads = self._forward_backward(
                cam, model_i, targets[step.view_id], batch
            )
            per_view_loss[step.view_id] = loss
            total_loss += loss / batch
            working.add_grads(grads)
            if position_grad_hook is not None:
                position_grad_hook(
                    step.view_id, step.working_set, grads["positions"]
                )
            carried = working.retire(step.stores, step.carried)
            if cfg.enable_overlap_adam and chunk.size:
                # Chunk F_j is final: its CPU Adam (+ writeback staging)
                # runs on the pool while the next microbatch renders.
                runtime.submit(self._apply_noncritical_adam, chunk)

        if not cfg.enable_overlap_adam:
            # Ablation: all updates at batch end (functionally identical,
            # nothing to hide them under — the barrier follows at once).
            for chunk in plan.adam_chunks:
                if chunk.size:
                    runtime.submit(self._apply_noncritical_adam, chunk)
        # The GPU-side critical update is independent of the pinned store,
        # so it too proceeds under any still-running noncritical chunks.
        self._apply_critical_adam(touched)
        runtime.barrier()
        stats = runtime.drain_stats()
        self._step_adam_s += stats.task_s
        self._step_overlap_hidden_s += stats.hidden_s
        working.release()
        result = self._batch_result(plan, working, total_loss, per_view_loss)
        return result, stats.task_s, stats.hidden_s

    # ------------------------------------------------------------------
    def _execute_plan_graph(
        self,
        plan,
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook],
        workers: int,
    ) -> "tuple[BatchResult, float, float]":
        """The dependency task-graph execution path (ROADMAP item 5).

        Per microbatch the chain ``assemble -> forward -> backward ->
        retire`` is a linear dependency spine (each assemble also depends
        on the previous retire: they share the double-buffered working
        set, and backward gradient accumulation across tile slabs is
        order-sensitive, so the spine must not be reordered).  Each
        finalized Adam chunk hangs off its step's retire node with *no*
        edges between chunks — the worker pool runs them in any order,
        bit-identical by chunk disjointness (§4.2.2), concurrently with
        later spine nodes.

        Returns ``(result, noncritical_adam_s, hidden_s)``.
        """
        cfg = self.config
        runtime = self._graph_runtime(workers)
        batch = plan.batch_size
        touched = plan.touched
        self.cpu_store.zero_grads(touched)
        self.gpu_store.zero_grads(touched)

        working = GpuWorkingSet(
            self.cpu_store,
            self.gpu_store,
            pool=self.pool,
            num_pixels=self._num_pixels,
        )
        # Spine-carried state: only one spine node runs at a time (linear
        # dependencies), so this dict is never accessed concurrently.
        state: Dict[str, object] = {"carried": None, "loss": 0.0}
        per_view_loss: Dict[int, float] = {}

        graph = TaskGraph(name="clm-batch")
        prev = None
        for step, chunk in zip(plan.steps, plan.adam_chunks):
            asm = graph.add(
                self._graph_assemble,
                working,
                step,
                state,
                name=f"ASM.{step.position}",
                kind="assemble",
                deps=(prev,) if prev is not None else (),
            )
            fwd = graph.add(
                self._graph_forward,
                step,
                state,
                targets[step.view_id],
                batch,
                per_view_loss,
                name=f"FWD.{step.position}",
                kind="forward",
                deps=(asm,),
            )
            bwd = graph.add(
                self._graph_backward,
                working,
                step,
                state,
                position_grad_hook,
                name=f"BWD.{step.position}",
                kind="backward",
                deps=(fwd,),
            )
            prev = graph.add(
                self._graph_retire,
                working,
                step,
                state,
                name=f"RET.{step.position}",
                kind="retire",
                deps=(bwd,),
            )
            if cfg.enable_overlap_adam and chunk.size:
                graph.add(
                    self._apply_noncritical_adam,
                    chunk,
                    name=f"ADAM.{step.position}",
                    kind="adam",
                    deps=(prev,),
                )
        if not cfg.enable_overlap_adam:
            for position, chunk in enumerate(plan.adam_chunks):
                if chunk.size and prev is not None:
                    graph.add(
                        self._apply_noncritical_adam,
                        chunk,
                        name=f"ADAM.{position}",
                        kind="adam",
                        deps=(prev,),
                    )
        if prev is not None:
            graph.add(
                self._apply_critical_adam,
                touched,
                name="CRIT_ADAM",
                kind="critical_adam",
                deps=(prev,),
            )
        stats = runtime.run(graph)
        adam_noncritical_s = stats.kind_s.get("adam", 0.0)
        self._step_adam_s += adam_noncritical_s
        self._step_overlap_hidden_s += stats.hidden_s
        working.release()
        result = self._batch_result(
            plan, working, float(state["loss"]), per_view_loss
        )
        return result, adam_noncritical_s, stats.hidden_s

    # -- graph node bodies (spine order == classic loop order) -----------
    def _graph_assemble(self, working, step, state) -> None:
        state["model"] = working.assemble(
            step.working_set, step.loads, step.cached, state["carried"]
        )

    def _graph_forward(
        self, step, state, target, batch, per_view_loss
    ) -> None:
        cam = self.cameras[step.view_id]
        start = time.perf_counter()
        render = self._render(cam, state["model"], self.raster_settings)
        self._step_forward_s += time.perf_counter() - start
        loss, g_img = photometric_loss(
            render.image, target, self.config.ssim_lambda
        )
        per_view_loss[step.view_id] = loss
        state["loss"] = float(state["loss"]) + loss / batch
        state["render"] = (render, g_img / batch)

    def _graph_backward(self, working, step, state, position_grad_hook) -> None:
        render, g_img = state.pop("render")
        start = time.perf_counter()
        grads = self._render_backward(render, state["model"], g_img)
        self._step_backward_s += time.perf_counter() - start
        working.add_grads(grads)
        if position_grad_hook is not None:
            position_grad_hook(
                step.view_id, step.working_set, grads["positions"]
            )

    def _graph_retire(self, working, step, state) -> None:
        state["carried"] = working.retire(step.stores, step.carried)

    def _batch_result(
        self, plan, working, total_loss: float, per_view_loss: Dict[int, float]
    ) -> BatchResult:
        return BatchResult(
            loss=total_loss,
            per_view_loss=per_view_loss,
            touched_gaussians=int(plan.touched.size),
            order=list(plan.order),
            loaded_gaussians=working.counters.loaded_gaussians,
            stored_gaussians=working.counters.stored_gaussians,
            cached_gaussians=working.counters.cached_gaussians,
            loaded_bytes=attributes.noncritical_bytes(
                working.counters.loaded_gaussians
            ),
            stored_bytes=attributes.noncritical_bytes(
                working.counters.stored_gaussians
            ),
            adam_chunk_sizes=plan.adam_chunk_sizes,
        )

    # ------------------------------------------------------------------
    def _apply_noncritical_adam(self, rows: np.ndarray) -> None:
        """Fused CPU Adam over one finalized chunk (the §5.4 thread's
        work): one gather from the pinned packed rows, one fused update,
        one scatter back — run on an :class:`OverlapExecutor` worker when
        the overlap runtime has one."""
        if rows.size == 0:
            return
        # Pass the full padded pinned buffer: whole cache-line-aligned rows
        # gather/scatter as contiguous memcpys (padding rides along).
        self.adam_noncritical.step_packed(
            self.cpu_store.params, self.cpu_store.grads, rows
        )

    def _apply_critical_adam(self, rows: np.ndarray) -> None:
        """GPU-side fused Adam over the resident packed critical rows."""
        if rows.size == 0:
            return
        start = time.perf_counter()
        self.adam_critical.step_packed(
            self.gpu_store.packed_params, self.gpu_store.packed_grads, rows
        )
        elapsed = time.perf_counter() - start
        self._step_adam_s += elapsed
        # Split out for the tuner: critical Adam is serial-on-main in the
        # prediction DAG, unlike the overlappable noncritical chunks.
        self._step_adam_critical_s += elapsed

    # ------------------------------------------------------------------
    def render_view(self, view_id: int):
        """Offloaded *inference*: render one view loading only its
        in-frustum working set from the CPU store.

        The paper's abstract claim ("render a large scene that requires 102
        million Gaussians on a single RTX 4090") is exactly this path —
        GPU memory holds critical attributes plus one view's non-critical
        slice, never the full model.
        """
        # Ordering is meaningless for one view; identity keeps the plan
        # cacheable (the 'random' strategy is cache-exempt) and draws
        # nothing from the RNG stream that orders training batches.
        plan = self.plan_batch([view_id], strategy="identity")
        step = plan.steps[0]
        working = GpuWorkingSet(
            self.cpu_store, self.gpu_store, pool=self.pool,
            num_pixels=self._num_pixels,
        )
        model_i = working.assemble(step.working_set, step.loads, step.cached)
        result = self._render(
            self.cameras[view_id], model_i, self.raster_settings
        )
        working.release()
        return result

    def rebuild(self, model: GaussianModel, keep_rows: np.ndarray) -> None:
        # No chunk can be in flight here: rebuild only runs between
        # batches, after train_batch's barrier.
        pool = self.pool
        if pool is not None:
            self.gpu_store.release()
        self.gpu_store = GpuCriticalStore(
            model, pool=pool, grad_dtype=self.config.grad_dtype
        )
        self.cpu_store = PinnedParameterStore(
            model, grad_dtype=self.config.grad_dtype
        )
        self.sh_degree = model.sh_degree
        self.adam_critical.resize(keep_rows)
        self.adam_noncritical.resize(keep_rows)

    def close(self) -> None:
        """Stop every pooled executor's worker threads (idempotent; the
        workers are daemons, so skipping this never hangs interpreter
        shutdown).  The adaptive runtime may have warmed executors at
        several worker counts — all of them close here."""
        for runtime in self._runtimes.values():
            runtime.close()
        for runtime in self._graph_runtimes.values():
            runtime.close()

    def __del__(self) -> None:  # best-effort thread cleanup
        try:
            self.close()
        except Exception:
            pass
