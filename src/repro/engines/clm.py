"""The CLM engine: functional offloaded training (paper §4, Figure 6).

One :meth:`CLMEngine.train_batch` call executes the full CLM step on real
NumPy arrays:

1. frustum-cull every view of the batch against the GPU-resident critical
   attributes (§4.1, §5.1);
2. obtain the :class:`repro.planning.BatchPlan` for the culled sets from
   the engine's :class:`repro.planning.BatchPlanner` — microbatch order
   (TSP by default, §4.2.3), precise-caching transfer steps (§4.2.1) and
   overlapped-Adam finalization chunks (§4.2.2), memoized by the plan
   cache;
3. execute the plan's microbatch loop: assemble the working set (cache copies +
   pinned-store loads), render, compute loss, backprop, accumulate
   gradients (GPU-resident for critical attributes, working-buffer for
   non-critical with carried accumulation), offload finalized gradients,
   and apply the eager CPU-Adam chunk;
4. finish the batch: last Adam chunk, then the GPU-side Adam update of the
   critical attributes.

Because the optimizer is per-row sparse Adam, the result is equivalent to
GPU-only training of the same batch — the equivalence tests in
``tests/core/test_equivalence.py`` check parameters bit-for-near-bit.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core import attributes
from repro.core.stores import (
    GpuCriticalStore,
    GpuWorkingSet,
    PinnedParameterStore,
)
from repro.engines.base import BatchResult, EngineBase, PositionGradHook
from repro.engines.registry import register_engine
from repro.gaussians.model import GaussianModel
from repro.optim.sparse_adam import SparseAdam

CRITICAL = ("positions", "log_scales", "quaternions")
NONCRITICAL = ("sh", "opacity_logits")


@register_engine(
    "clm",
    description="CLM offloading: critical attributes GPU-resident, precise "
    "caching, TSP ordering, overlapped CPU Adam (§4)",
)
class CLMEngine(EngineBase):
    """Offloaded 3DGS training over split parameter stores."""

    def _setup(self, model: GaussianModel) -> None:
        self.gpu_store = GpuCriticalStore(model, pool=self.pool)
        self.cpu_store = PinnedParameterStore(model)
        self.sh_degree = model.sh_degree
        self.adam_critical = SparseAdam(
            self.gpu_store.params(), config=self.config.adam
        )
        self.adam_noncritical = SparseAdam(
            {
                "sh": model.sh,
                "opacity_logits": model.opacity_logits,
            },
            config=self.config.adam,
        )

    def _culling_arrays(self):
        return (
            self.gpu_store.positions,
            self.gpu_store.log_scales,
            self.gpu_store.quaternions,
        )

    # ------------------------------------------------------------------
    @property
    def num_gaussians(self) -> int:
        return self.gpu_store.num_rows

    def snapshot_model(self) -> GaussianModel:
        """Reassemble the full model from both stores (for eval/densify)."""
        nc = self.cpu_store.gather_params(np.arange(self.num_gaussians))
        return GaussianModel(
            positions=self.gpu_store.positions.copy(),
            log_scales=self.gpu_store.log_scales.copy(),
            quaternions=self.gpu_store.quaternions.copy(),
            sh=nc["sh"],
            opacity_logits=nc["opacity_logits"],
            sh_degree=self.sh_degree,
        )

    # ------------------------------------------------------------------
    def _train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook] = None,
    ) -> BatchResult:
        """One full CLM training step over ``view_ids``.

        ``targets`` maps view id -> ground-truth image.
        ``position_grad_hook(view_id, working_set, position_grads)`` lets
        the trainer collect densification statistics without the engine
        knowing about them.
        """
        cfg = self.config
        batch = len(view_ids)
        plan = self.plan_batch(view_ids)
        touched = plan.touched
        self.cpu_store.zero_grads(touched)
        self.gpu_store.zero_grads(touched)

        working = GpuWorkingSet(
            self.cpu_store,
            self.gpu_store,
            pool=self.pool,
            num_pixels=self._num_pixels,
        )
        carried = None
        total_loss = 0.0
        per_view_loss: Dict[int, float] = {}

        for step, chunk in zip(plan.steps, plan.adam_chunks):
            model_i = working.assemble(
                step.working_set, step.loads, step.cached, carried
            )
            cam = self.cameras[step.view_id]
            loss, grads = self._forward_backward(
                cam, model_i, targets[step.view_id], batch
            )
            per_view_loss[step.view_id] = loss
            total_loss += loss / batch
            working.add_grads(grads)
            if position_grad_hook is not None:
                position_grad_hook(
                    step.view_id, step.working_set, grads["positions"]
                )
            carried = working.retire(step.stores, step.carried)
            if cfg.enable_overlap_adam:
                self._apply_noncritical_adam(chunk)

        if not cfg.enable_overlap_adam:
            for chunk in plan.adam_chunks:
                self._apply_noncritical_adam(chunk)
        self._apply_critical_adam(touched)
        working.release()

        return BatchResult(
            loss=total_loss,
            per_view_loss=per_view_loss,
            touched_gaussians=int(touched.size),
            order=list(plan.order),
            loaded_gaussians=working.counters.loaded_gaussians,
            stored_gaussians=working.counters.stored_gaussians,
            cached_gaussians=working.counters.cached_gaussians,
            loaded_bytes=attributes.noncritical_bytes(
                working.counters.loaded_gaussians
            ),
            stored_bytes=attributes.noncritical_bytes(
                working.counters.stored_gaussians
            ),
            adam_chunk_sizes=plan.adam_chunk_sizes,
        )

    # ------------------------------------------------------------------
    def _apply_noncritical_adam(self, rows: np.ndarray) -> None:
        """CPU Adam over one finalized chunk (the §5.4 thread's work)."""
        if rows.size == 0:
            return
        params = self.cpu_store.gather_params(rows)
        grads = self.cpu_store.gather_grads(rows)
        self.adam_noncritical.step_gathered(params, grads, rows)
        self.cpu_store.write_params(rows, params)

    def _apply_critical_adam(self, rows: np.ndarray) -> None:
        """GPU-side Adam over the resident critical attributes."""
        if rows.size == 0:
            return
        self.adam_critical.step_rows(
            self.gpu_store.params(), self.gpu_store.grads, rows
        )

    # ------------------------------------------------------------------
    def render_view(self, view_id: int):
        """Offloaded *inference*: render one view loading only its
        in-frustum working set from the CPU store.

        The paper's abstract claim ("render a large scene that requires 102
        million Gaussians on a single RTX 4090") is exactly this path —
        GPU memory holds critical attributes plus one view's non-critical
        slice, never the full model.
        """
        # Ordering is meaningless for one view; identity keeps the plan
        # cacheable (the 'random' strategy is cache-exempt) and draws
        # nothing from the RNG stream that orders training batches.
        plan = self.plan_batch([view_id], strategy="identity")
        step = plan.steps[0]
        working = GpuWorkingSet(
            self.cpu_store, self.gpu_store, pool=self.pool,
            num_pixels=self._num_pixels,
        )
        model_i = working.assemble(step.working_set, step.loads, step.cached)
        result = self._render(
            self.cameras[view_id], model_i, self.raster_settings
        )
        working.release()
        return result

    def rebuild(self, model: GaussianModel, keep_rows: np.ndarray) -> None:
        pool = self.pool
        if pool is not None:
            self.gpu_store.release()
        self.gpu_store = GpuCriticalStore(model, pool=pool)
        self.cpu_store = PinnedParameterStore(model)
        self.sh_degree = model.sh_degree
        self.adam_critical.resize(self.gpu_store.params(), keep_rows)
        self.adam_noncritical.resize(
            {"sh": model.sh, "opacity_logits": model.opacity_logits}, keep_rows
        )
