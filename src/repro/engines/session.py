"""`TrainingSession` — the documented front door for functional training.

One object wraps scene setup, engine construction (by registry name), the
batch loop with densification/schedules, evaluation, and checkpointing::

    import repro

    sess = repro.session(scene, engine="clm")
    sess.train(batches=50)
    print(sess.metrics.final_psnr)
    sess.checkpoint("run.npz")

``TrainingSession`` keeps *cumulative* metrics across multiple ``train``
calls (batch indices keep counting up), and exposes the low-level
``train_batch(view_ids)`` step for experiments that pin exact batches —
the functional-equivalence tests drive all four engines through this path.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.checkpoint import restore_into_engine, save_checkpoint
from repro.engines.base import BatchResult, Engine
from repro.gaussians.model import GaussianModel


class TrainingSession:
    """Facade over :class:`repro.core.trainer.Trainer` and the registry."""

    def __init__(
        self,
        scene,
        engine: str = "clm",
        config=None,
        *,
        trainer_config=None,
        densify_config=None,
        initial_model: Optional[GaussianModel] = None,
        sh_degree: int = 1,
    ) -> None:
        # Local import: repro.core.trainer consumes the registry at engine
        # construction time, so importing it at module scope would close an
        # import cycle through repro.engines.__init__.
        from repro.core.trainer import Trainer, TrainingHistory

        self._trainer = Trainer(
            scene,
            engine_type=engine,
            engine_config=config,
            trainer_config=trainer_config,
            densify_config=densify_config,
            initial_model=initial_model,
            sh_degree=sh_degree,
        )
        self.engine_name = engine
        self.metrics = TrainingHistory()
        self.batches_trained = 0

    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        """The live engine instance (an :class:`Engine`)."""
        return self._trainer.engine

    @property
    def scene(self):
        return self._trainer.scene

    @property
    def config(self):
        return self._trainer.engine_config

    @property
    def num_gaussians(self) -> int:
        return self.engine.num_gaussians

    @property
    def perf(self):
        """The engine's cumulative :class:`repro.engines.base.PerfCounters`
        (wall time, throughput, transfer volume) — what the benchmark
        subsystem reads into a ``BenchRecord``."""
        return self.engine.perf

    @property
    def planner(self):
        """The engine's :class:`repro.planning.BatchPlanner` — inspect
        ``sess.planner.counters`` for plan-cache hit rates and planning
        time, or ``sess.planner.cache`` for the memoized plans."""
        return self.engine.planner

    @property
    def tuner(self):
        """The engine's :class:`repro.autotune.AutoTuner`, or ``None``
        when the engine doesn't auto-tune (``config.autotune`` off, or an
        engine without an adaptive runtime).  ``sess.tuner.summary()``
        reports prediction error and the most-chosen configuration."""
        return getattr(self.engine, "tuner", None)

    # ------------------------------------------------------------------
    def train(self, batches: Optional[int] = None):
        """Run ``batches`` training batches (default: the trainer config's
        ``num_batches``, which is never mutated) and fold the results into
        :attr:`metrics`.

        Incremental calls continue the same absolute step timeline —
        learning-rate schedules, densification windows, and opacity resets
        behave as in one uninterrupted run, and eval batch indices keep
        counting up.  Returns the history of *this* call.
        """
        count = (
            self._trainer.config.num_batches if batches is None else batches
        )
        history = self._trainer.train(
            num_batches=count, start_step=self.batches_trained
        )
        self.metrics.losses.extend(history.losses)
        self.metrics.gaussian_counts.extend(history.gaussian_counts)
        self.metrics.psnrs.extend(history.psnrs)
        self.metrics.eval_batches.extend(history.eval_batches)
        self.metrics.loaded_bytes += history.loaded_bytes
        self.metrics.stored_bytes += history.stored_bytes
        self.metrics.wall_time_s += history.wall_time_s
        self.batches_trained += count
        return history

    def train_batch(self, view_ids: Sequence[int]) -> BatchResult:
        """One engine step over explicit ``view_ids`` (targets come from
        the scene), bypassing batch sampling and densification."""
        result = self.engine.train_batch(
            list(view_ids),
            self._trainer.targets,
            position_grad_hook=self._trainer._record_grads,
        )
        self.metrics.losses.append(result.loss)
        self.metrics.gaussian_counts.append(self.engine.num_gaussians)
        self.metrics.loaded_bytes += result.loaded_bytes
        self.metrics.stored_bytes += result.stored_bytes
        self.metrics.wall_time_s += result.wall_time_s
        self.batches_trained += 1
        return result

    # ------------------------------------------------------------------
    def evaluate(self) -> float:
        """Mean PSNR over the scene's training views (Figure 9 metric)."""
        return self._trainer.evaluate()

    def render_view(self, view_id: int):
        """Render one training view through the engine's inference path."""
        return self.engine.render_view(view_id)

    def snapshot_model(self) -> GaussianModel:
        return self.engine.snapshot_model()

    def targets(self) -> Dict[int, np.ndarray]:
        """Ground-truth images by view id."""
        return dict(self._trainer.targets)

    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> None:
        """Serialize model + optimizer state to ``path`` (.npz)."""
        save_checkpoint(path, self.engine, batches_trained=self.batches_trained)

    def restore(self, path: str) -> dict:
        """Load a checkpoint saved from an engine of the same shape."""
        meta = restore_into_engine(path, self.engine)
        self.batches_trained = int(meta.get("batches_trained", 0))
        return meta


def session(
    scene,
    engine: str = "clm",
    config=None,
    **kwargs,
) -> TrainingSession:
    """Create a :class:`TrainingSession` — the recommended entry point.

    ``engine`` is a registry name (see
    :func:`repro.engines.available_engines`); ``config`` an optional
    :class:`repro.core.config.EngineConfig`.  Remaining keyword arguments
    are forwarded to :class:`TrainingSession`.
    """
    return TrainingSession(scene, engine=engine, config=config, **kwargs)
