"""The engine contract shared by the four systems of §6.1.

Three pieces live here:

- :class:`BatchResult` — the *unified* per-batch metrics record.  Every
  engine returns the same dataclass; transfer counters default to zero so
  Figure 13/14-style reporting works uniformly (a GPU-only engine simply
  reports ``loaded_bytes == 0``, the naive offloader reports ``N`` whole
  Gaussians per direction, CLM reports its precise working-set traffic).
- :class:`Engine` — the abstract protocol: ``train_batch``, ``evaluate``,
  ``render_view``, ``snapshot_model``, ``rebuild``, ``num_gaussians``.
  ``Trainer``, :class:`repro.engines.session.TrainingSession`, the CLI and
  the checkpoint machinery program against this interface only.
- :class:`EngineBase` — the shared skeleton: camera bookkeeping, renderer
  resolution, the simulated GPU memory pool, pre-rendering frustum culling
  (§5.1), the per-view forward/backward step, gather/scatter gradient
  accumulation, and the batch-end sparse-Adam finalization.  Concrete
  engines shrink to their actual policy differences.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import EngineConfig
from repro.gaussians.camera import Camera
from repro.gaussians.frustum import cull_gaussians
from repro.gaussians.loss import photometric_loss, psnr
from repro.gaussians.model import GaussianModel
from repro.hardware.memory import MemoryPool
from repro.planning.plan import BatchPlan
from repro.planning.planner import BatchPlanner
from repro.utils.rng import make_rng

#: Hook signature: ``hook(view_id, working_set, position_grads)``.
PositionGradHook = Callable[[int, np.ndarray, np.ndarray], None]


@dataclass(kw_only=True)
class BatchResult:
    """Metrics of one training batch, uniform across all engines.

    ``loaded_bytes``/``stored_bytes`` are explicit fields (not derived from
    the Gaussian counters) because engines move different per-Gaussian
    payloads: CLM transfers only the 49 non-critical floats, the naive
    offloader all 59, GPU-only engines none.

    Keyword-only: the field set differs from the pre-unification
    ``BatchResult``/``NaiveBatchResult``/``GpuOnlyBatchResult``
    dataclasses, so positional construction against the old layouts fails
    loudly instead of silently scrambling fields.
    """

    loss: float
    per_view_loss: Dict[int, float]
    touched_gaussians: int
    order: List[int] = field(default_factory=list)
    loaded_gaussians: int = 0
    stored_gaussians: int = 0
    cached_gaussians: int = 0
    loaded_bytes: float = 0.0
    stored_bytes: float = 0.0
    adam_chunk_sizes: List[int] = field(default_factory=list)
    #: Wall-clock seconds of this batch, stamped by
    #: :meth:`EngineBase.train_batch` (not by the engine implementations).
    wall_time_s: float = 0.0
    #: Seconds this batch spent inside the renderer's forward pass
    #: (:meth:`EngineBase._forward_backward` render call), stamped by
    #: :meth:`EngineBase.train_batch` like ``wall_time_s``.
    forward_s: float = 0.0
    #: Seconds spent inside the renderer's backward pass.
    backward_s: float = 0.0
    #: Seconds spent inside optimizer updates (sparse/packed Adam), stamped
    #: by :meth:`EngineBase.train_batch` from the engine's accumulators.
    adam_s: float = 0.0
    #: Of ``adam_s``, the seconds measured as genuinely hidden under the
    #: training thread's compute by the overlap runtime
    #: (:class:`repro.runtime.OverlapExecutor`); 0 on synchronous paths.
    overlap_hidden_s: float = 0.0
    #: Sharded-training extras (zero on single-device engines): rows
    #: borrowed across shard boundaries this batch, the modeled PCIe bytes
    #: of their exchange, and microbatches migrated by work stealing.
    halo_gaussians: int = 0
    halo_bytes: float = 0.0
    stolen_microbatches: int = 0
    #: Simulated multi-device schedule of this batch (seconds): the
    #: discrete-event makespan and each device's busy compute time.
    sim_makespan_s: float = 0.0
    device_busy_s: Dict[int, float] = field(default_factory=dict)
    #: Fault-tolerance accounting (zero on fault-free batches): seconds
    #: spent in elastic recovery (snapshot restore + re-shard +
    #: re-execution), batches of work lost to fail-stops, devices that
    #: failed this batch, and link retransmissions charged by the fault
    #: injector's degraded links.
    recovery_s: float = 0.0
    lost_batches: int = 0
    failed_devices: int = 0
    link_retries: int = 0
    #: Adaptive-runtime accounting (zero/None unless the engine ran with
    #: ``config.autotune``): the configuration the tuner chose for this
    #: batch, its simulator-predicted makespan, and the relative error of
    #: that prediction against the measured wall time.
    autotuned: bool = False
    tuned_workers: Optional[int] = None
    tuned_group_size: Optional[int] = None
    tuned_ordering: Optional[str] = None
    tuned_kernel_backend: Optional[str] = None
    predicted_makespan_s: float = 0.0
    autotune_rel_error: float = 0.0


@dataclass
class PerfCounters:
    """Cumulative training-loop counters, one instance per engine.

    :meth:`EngineBase.train_batch` folds every :class:`BatchResult` in, so
    after any number of batches the engine can answer the questions a
    :class:`repro.bench.record.BenchRecord` asks — throughput, transfer
    volume, batch count — without the caller keeping its own tallies.
    """

    batches: int = 0
    images: int = 0
    wall_time_s: float = 0.0
    #: Resolved kernel-backend name the engine renders/steps with (see
    #: :mod:`repro.kernels`) — stamped at engine construction so bench
    #: records can attribute every number to the backend that produced it.
    kernel_backend: str = "numpy"
    #: Cumulative renderer forward / backward seconds (the raster hot path
    #: the PR 4 substrate optimizes), split out of ``wall_time_s``.
    forward_s: float = 0.0
    backward_s: float = 0.0
    #: Cumulative optimizer-update seconds (the CPU/GPU Adam term the
    #: overlap runtime targets) and, of those, the seconds the
    #: :class:`repro.runtime.OverlapExecutor` measured as hidden under
    #: the training thread's compute.  ``adam_s`` seconds executed on
    #: worker threads may overlap ``wall_time_s``'s other stages — that
    #: is the point — so the stage times are not additive under overlap.
    adam_s: float = 0.0
    overlap_hidden_s: float = 0.0
    loaded_bytes: float = 0.0
    stored_bytes: float = 0.0
    loaded_gaussians: int = 0
    stored_gaussians: int = 0
    cached_gaussians: int = 0
    #: Sharded-training tallies (stay zero on single-device engines).
    halo_gaussians: int = 0
    halo_bytes: float = 0.0
    stolen_microbatches: int = 0
    sim_makespan_s: float = 0.0
    device_busy_s: Dict[int, float] = field(default_factory=dict)
    #: Fault-tolerance tallies (stay zero on fault-free runs): cumulative
    #: elastic-recovery seconds, batches lost to fail-stops, devices
    #: failed, and link retransmissions on degraded PCIe links.
    recovery_s: float = 0.0
    lost_batches: int = 0
    failed_devices: int = 0
    link_retries: int = 0
    #: Adaptive-runtime tallies (stay zero without ``config.autotune``):
    #: batches tuned, cumulative predicted makespan, cumulative relative
    #: prediction error, and the most recently chosen configuration.
    autotuned_batches: int = 0
    predicted_makespan_s: float = 0.0
    autotune_rel_error_sum: float = 0.0
    tuned_config: Dict[str, object] = field(default_factory=dict)

    @property
    def autotune_mean_rel_error(self) -> float:
        """Mean relative makespan-prediction error over tuned batches."""
        if self.autotuned_batches == 0:
            return 0.0
        return self.autotune_rel_error_sum / self.autotuned_batches

    @property
    def transfer_bytes(self) -> float:
        """Total CPU<->GPU parameter/gradient traffic, both directions."""
        return self.loaded_bytes + self.stored_bytes

    @property
    def images_per_second(self) -> float:
        """Measured functional-training throughput (0 before any batch)."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.images / self.wall_time_s

    def observe(self, result: "BatchResult", images: int) -> None:
        self.batches += 1
        self.images += images
        self.wall_time_s += result.wall_time_s
        self.forward_s += result.forward_s
        self.backward_s += result.backward_s
        self.adam_s += result.adam_s
        self.overlap_hidden_s += result.overlap_hidden_s
        self.loaded_bytes += result.loaded_bytes
        self.stored_bytes += result.stored_bytes
        self.loaded_gaussians += result.loaded_gaussians
        self.stored_gaussians += result.stored_gaussians
        self.cached_gaussians += result.cached_gaussians
        self.halo_gaussians += result.halo_gaussians
        self.halo_bytes += result.halo_bytes
        self.stolen_microbatches += result.stolen_microbatches
        self.sim_makespan_s += result.sim_makespan_s
        self.recovery_s += result.recovery_s
        self.lost_batches += result.lost_batches
        self.failed_devices += result.failed_devices
        self.link_retries += result.link_retries
        for k, busy in result.device_busy_s.items():
            self.device_busy_s[k] = self.device_busy_s.get(k, 0.0) + busy
        if result.autotuned:
            self.autotuned_batches += 1
            self.predicted_makespan_s += result.predicted_makespan_s
            self.autotune_rel_error_sum += result.autotune_rel_error
            self.tuned_config = {
                "overlap_workers": result.tuned_workers,
                "group_size": result.tuned_group_size,
                "ordering": result.tuned_ordering,
                "kernel_backend": result.tuned_kernel_backend,
            }


class Engine(abc.ABC):
    """What every training system must provide (the §6.1 contract)."""

    config: EngineConfig

    @property
    @abc.abstractmethod
    def num_gaussians(self) -> int:
        """Current model size."""

    @abc.abstractmethod
    def train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook] = None,
    ) -> BatchResult:
        """One full training step over ``view_ids`` (targets by view id)."""

    @abc.abstractmethod
    def evaluate(
        self, view_ids: Sequence[int], targets: Dict[int, np.ndarray]
    ) -> float:
        """Mean PSNR over ``view_ids``."""

    @abc.abstractmethod
    def render_view(self, view_id: int):
        """Render one view; returns the renderer result (``.image``)."""

    @abc.abstractmethod
    def snapshot_model(self) -> GaussianModel:
        """Full model reassembled from whatever stores the engine uses."""

    @abc.abstractmethod
    def rebuild(self, model: GaussianModel, keep_rows: np.ndarray) -> None:
        """Reconstruct stores/optimizer state after densify/prune.

        ``keep_rows`` maps new rows to old rows (-1 = new Gaussian).
        """


class EngineBase(Engine):
    """Shared construction and microbatch-loop skeleton.

    Subclasses implement :meth:`_setup` (build stores and optimizers from
    the initial model) and :meth:`_culling_arrays` (where the
    selection-critical attributes live), plus :meth:`_train_batch`,
    :meth:`snapshot_model` and :meth:`rebuild`.  The public
    :meth:`train_batch` wraps :meth:`_train_batch` with wall-clock timing
    and the cumulative :class:`PerfCounters`.  ``evaluate`` and
    ``render_view`` have snapshot-based defaults; CLM overrides
    ``render_view`` with its offloaded working-set path.
    """

    def __init__(
        self,
        model: GaussianModel,
        cameras: Sequence[Camera],
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.cameras: Dict[int, Camera] = {c.view_id: c for c in cameras}
        self._num_pixels = max(
            (c.num_pixels for c in self.cameras.values()), default=0
        )
        self._rng = make_rng(self.config.seed)
        #: Resolved kernel-backend name (``config.kernel_backend`` after
        #: auto-selection/env override — see :mod:`repro.kernels`).  All
        #: of this engine's raster and packed-Adam calls run on it, and it
        #: keys the plan fingerprints so plans never leak across backends.
        from repro.kernels import resolve_backend

        self.kernel_backend = resolve_backend(
            getattr(self.config, "kernel_backend", None)
        ).name
        #: The engine's batch planner (shared RNG stream, so the ``random``
        #: ordering draws from the same sequence the pre-planner code did).
        self.planner = BatchPlanner.from_engine_config(
            self.config, seed=self._rng, kernel_backend=self.kernel_backend
        )
        self._render, self._render_backward = self.config.resolve_renderer()
        self.pool: Optional[MemoryPool] = None
        if self.config.gpu_capacity_bytes is not None:
            self.pool = MemoryPool(self.config.gpu_capacity_bytes, name="gpu")
        self.batches_trained = 0
        self.perf = PerfCounters(kernel_backend=self.kernel_backend)
        #: Per-call raster-settings overlay (field -> value), applied last
        #: by :attr:`raster_settings`.  The auto-tuner writes its per-batch
        #: ``group_size`` (and, when backend tuning is opted into, the
        #: ``kernel_backend``) here instead of mutating the shared config.
        self._raster_overrides: Dict[str, object] = {}
        # Per-batch renderer/optimizer timing accumulators, reset by
        # train_batch.
        self._step_forward_s = 0.0
        self._step_backward_s = 0.0
        self._step_adam_s = 0.0
        self._step_overlap_hidden_s = 0.0
        self._setup(model)

    @property
    def raster_settings(self):
        """The raster settings this engine renders with — a live view of
        ``config.raster`` (schedules like the trainer's SH warmup mutate
        that shared object in place), never a construction-time snapshot.

        Under an enforced GPU pool the activation allocations follow the
        analytic ``ACT_PER_GAUSSIAN`` model, which (like the paper's CUDA
        kernels) assumes the backward pass recomputes the blending state;
        retaining the blend cache would hold real bytes the pool never
        accounted for, so retention is forced off here on capacity-limited
        runs — as a per-call overlay, without mutating the caller's config
        (it may be shared across engines).
        """
        settings = self.config.raster
        if self.pool is not None and settings.cache_blend_state:
            settings = dc_replace(settings, cache_blend_state=False)
        # Thread the engine's resolved kernel backend into the renderer as
        # an overlay — only when the config pins an explicit backend and
        # the raster settings don't already pin one themselves.  Under
        # ``auto`` the renderer's own per-call resolution lands on the
        # same backend, so the settings object passes through untouched
        # (keeping the live-view identity contract).
        requested = getattr(self.config, "kernel_backend", "auto")
        if settings.kernel_backend is None and requested not in (None, "", "auto"):
            settings = dc_replace(settings, kernel_backend=self.kernel_backend)
        # Tuned overlays last: per-batch settings the adaptive runtime
        # chose (group_size, opted-in backend) win over the static config
        # without ever mutating the shared settings object.
        if self._raster_overrides:
            settings = dc_replace(settings, **self._raster_overrides)
        return settings

    # -- subclass hooks -------------------------------------------------
    @abc.abstractmethod
    def _setup(self, model: GaussianModel) -> None:
        """Build parameter stores and optimizers from ``model``."""

    @abc.abstractmethod
    def _train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook] = None,
    ) -> BatchResult:
        """The engine-specific batch step (no bookkeeping)."""

    # -- the instrumented batch step ------------------------------------
    def train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook] = None,
    ) -> BatchResult:
        """One training batch, instrumented.

        Template method: delegates to :meth:`_train_batch`, stamps the
        measured ``wall_time_s`` and the renderer ``forward_s``/
        ``backward_s`` split onto the result, and folds it into
        :attr:`perf` — every engine gets uniform per-batch timing and
        transfer accounting for free.
        """
        self._step_forward_s = 0.0
        self._step_backward_s = 0.0
        self._step_adam_s = 0.0
        self._step_overlap_hidden_s = 0.0
        start = time.perf_counter()
        result = self._train_batch(view_ids, targets, position_grad_hook)
        result.wall_time_s = time.perf_counter() - start
        result.forward_s = self._step_forward_s
        result.backward_s = self._step_backward_s
        result.adam_s = self._step_adam_s
        result.overlap_hidden_s = self._step_overlap_hidden_s
        self.batches_trained += 1
        self.perf.observe(result, len(view_ids))
        # Re-stamp the backend identity from what actually executed: a
        # backend whose compile() failed mid-run falls back per-op to the
        # reference (see repro.kernels.compile_with_fallback), and the
        # perf counters must report the post-fallback truth.
        self.perf.kernel_backend = self._active_kernel_backend()
        return result

    def _active_kernel_backend(self) -> str:
        """The backend name the engine's kernels *actually* ran on.

        Defaults to the resolved :attr:`kernel_backend`; when any of the
        engine's optimizers recorded a per-op fallback (their
        ``active_kernel_backend`` differs from the resolved name), that
        post-fallback identity wins — it is what produced the numbers.
        """
        for attr in ("adam_critical", "adam_noncritical", "optimizer"):
            opt = getattr(self, attr, None)
            active = getattr(opt, "active_kernel_backend", None)
            if active and active != self.kernel_backend:
                return active
        return self.kernel_backend

    @abc.abstractmethod
    def _culling_arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """``(positions, log_scales, quaternions)`` used for culling."""

    # -- shared machinery ----------------------------------------------
    def cull_views(self, view_ids: Sequence[int]) -> List[np.ndarray]:
        """Pre-rendering frustum culling using critical attributes only
        (§5.1) — one in-frustum index set per view."""
        positions, log_scales, quaternions = self._culling_arrays()
        return [
            cull_gaussians(
                self.cameras[vid], positions, log_scales, quaternions
            )
            for vid in view_ids
        ]

    def plan_batch(
        self, view_ids: Sequence[int], strategy: Optional[str] = None
    ) -> BatchPlan:
        """Cull ``view_ids`` and plan the batch through :attr:`planner`.

        Every engine's ``train_batch`` (and CLM's offloaded render path)
        goes through here, so functional execution and the simulator
        consume plans with identical semantics.  ``strategy`` overrides
        the configured ordering — the non-pipelined engines pass
        ``"identity"`` to process batches exactly as sampled.
        """
        sets = self.cull_views(view_ids)
        cams = [self.cameras[v] for v in view_ids]
        return self.planner.plan(
            sets,
            list(view_ids),
            cameras=cams,
            num_gaussians=self.num_gaussians,
            strategy=strategy,
        )

    def _max_frustum_fraction(self) -> float:
        """max_i |S_i| / N over all cameras (the rho_max of Table 2)."""
        n = max(1, self.num_gaussians)
        sets = self.cull_views(list(self.cameras))
        return max((s.size / n for s in sets), default=0.0)

    def _forward_backward(self, cam: Camera, model_like, target, batch: int):
        """Render one view, compute the photometric loss, backpropagate.

        Returns ``(loss, grads)`` with gradients already scaled by the
        1/batch gradient-accumulation factor.  Renderer forward and
        backward wall time is accumulated into the per-batch counters
        :meth:`train_batch` stamps onto the :class:`BatchResult`.
        """
        start = time.perf_counter()
        result = self._render(cam, model_like, self.raster_settings)
        self._step_forward_s += time.perf_counter() - start
        loss, g_img = photometric_loss(
            result.image, target, self.config.ssim_lambda
        )
        start = time.perf_counter()
        grads = self._render_backward(result, model_like, g_img / batch)
        self._step_backward_s += time.perf_counter() - start
        return loss, grads

    def _accumulate_planned(
        self,
        plan: BatchPlan,
        targets: Dict[int, np.ndarray],
        model: GaussianModel,
        grads: Dict[str, np.ndarray],
        position_grad_hook: Optional[PositionGradHook],
    ):
        """The gather -> render -> backprop -> scatter-add loop over a
        planned batch.

        Shared by the naive offloader and the enhanced GPU-only engine:
        per microbatch step, only the in-frustum working set enters the
        rasterizer and its gradients are scatter-added into the
        full-model ``grads``.

        Returns ``(per_view_loss, total_loss)``.
        """
        batch = plan.batch_size
        per_view_loss: Dict[int, float] = {}
        total_loss = 0.0
        for step in plan.steps:
            cam = self.cameras[step.view_id]
            sub = model.gather(step.working_set)
            loss, sub_grads = self._forward_backward(
                cam, sub, targets[step.view_id], batch
            )
            for name, full in grads.items():
                full[step.working_set] += sub_grads[name]
            if position_grad_hook is not None:
                position_grad_hook(
                    step.view_id, step.working_set, sub_grads["positions"]
                )
            per_view_loss[step.view_id] = loss
            total_loss += loss / batch
        return per_view_loss, total_loss

    def _finalize_sparse_adam(
        self,
        optimizer,
        params: Dict[str, np.ndarray],
        grads: Dict[str, np.ndarray],
        touched: np.ndarray,
    ) -> np.ndarray:
        """Batch-end sparse-Adam update over the plan's touched union;
        returns the touched row set.  The update wall time lands in the
        batch's ``adam_s`` counter."""
        start = time.perf_counter()
        optimizer.step_rows(params, grads, touched)
        self._step_adam_s += time.perf_counter() - start
        return touched

    # -- forward-only (serving/inference) path --------------------------
    @property
    def serving_raster_settings(self):
        """Raster settings for forward-only renders (the serving layer).

        Identical imaging math to :attr:`raster_settings`, but the
        blend-state cache is never retained: serving runs no backward
        pass, so keeping forward blending state would hold activation
        bytes nothing ever reads (see the serving note in
        :mod:`repro.core.memory_model`).
        """
        settings = self.raster_settings
        if settings.cache_blend_state:
            settings = dc_replace(settings, cache_blend_state=False)
        return settings

    def render_forward(self, camera: Camera, model_like):
        """Forward-only render through the engine's resolved renderer.

        The shared entry point of :mod:`repro.serving`: same renderer and
        settings resolution as the training-time forward of
        :meth:`_forward_backward`, so serving images are bit-identical to
        training-batch renders of the same working set — pinned by
        ``tests/serving/test_forward_parity.py``.
        """
        return self._render(camera, model_like, self.serving_raster_settings)

    # -- default evaluation / inference --------------------------------
    def _eval_model(self) -> GaussianModel:
        """Read-only model used by the default ``evaluate``/``render_view``.

        Defaults to a snapshot; engines whose full model is already
        resident override this to avoid copying N Gaussians per call.
        """
        return self.snapshot_model()

    def evaluate(
        self, view_ids: Sequence[int], targets: Dict[int, np.ndarray]
    ) -> float:
        model = self._eval_model()
        values = [
            psnr(
                self._render(
                    self.cameras[vid], model, self.raster_settings
                ).image,
                targets[vid],
            )
            for vid in view_ids
        ]
        return float(np.mean(values)) if values else 0.0

    def render_view(self, view_id: int):
        return self._render(
            self.cameras[view_id], self._eval_model(), self.raster_settings
        )
