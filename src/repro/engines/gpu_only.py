"""GPU-only training engines: the paper's two non-offloading comparators.

- **baseline** — the Grendel-GS + gsplat configuration of §6.1: frustum
  culling is fused into the rendering kernels, so every kernel streams all
  ``N`` Gaussians and activation state is allocated for all of them.
- **enhanced baseline** — baseline plus CLM's pre-rendering frustum culling
  (§5.1): the in-frustum set is computed first and only those Gaussians
  enter the rasterizer, cutting compute and activation memory.

Functionally the two produce identical gradients (out-of-frustum Gaussians
contribute nothing); they differ in the simulated cost/memory models and —
in this functional implementation — in whether the rasterizer input is
pre-gathered.  The equivalence test relies on exactly that property.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import EngineConfig
from repro.core.memory_model import (
    ACT_PER_GAUSSIAN,
    ACT_PER_PIXEL,
    MODEL_STATE_FULL_BPG,
)
from repro.engines.base import BatchResult, EngineBase, PositionGradHook
from repro.engines.registry import register_engine
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.optim.sparse_adam import SparseAdam


@register_engine(
    "baseline",
    description="GPU-only baseline (Grendel-GS + gsplat): full model state "
    "resident, culling fused into the kernels",
)
class GpuOnlyEngine(EngineBase):
    """Whole-model-on-GPU training (baseline / enhanced baseline)."""

    def __init__(
        self,
        model: GaussianModel,
        cameras: Sequence[Camera],
        config: Optional[EngineConfig] = None,
        enhanced: bool = False,
    ) -> None:
        self.enhanced = enhanced
        super().__init__(model, cameras, config)

    def _setup(self, model: GaussianModel) -> None:
        self.model = model.clone()
        self.optimizer = SparseAdam(
            self.model.parameters(), config=self.config.adam
        )
        if self.pool is not None:
            self._allocate()

    def _culling_arrays(self):
        return (
            self.model.positions,
            self.model.log_scales,
            self.model.quaternions,
        )

    def _allocate(self) -> None:
        """Reserve the canonical GPU footprint; raises OutOfMemoryError when
        the simulated card is too small (the Figure 8 mechanism)."""
        assert self.pool is not None
        n = self.model.num_gaussians
        self.pool.alloc("model_states", MODEL_STATE_FULL_BPG * n)
        act_gaussians = n  # fused path: activations for every Gaussian
        if self.enhanced:
            act_gaussians = self._max_frustum_fraction() * n
        self.pool.alloc(
            "activations",
            ACT_PER_GAUSSIAN * act_gaussians + ACT_PER_PIXEL * self._num_pixels,
        )

    @property
    def num_gaussians(self) -> int:
        return self.model.num_gaussians

    def snapshot_model(self) -> GaussianModel:
        return self.model.clone()

    def _eval_model(self) -> GaussianModel:
        return self.model  # already resident; no copy needed

    # ------------------------------------------------------------------
    def _train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook] = None,
    ) -> BatchResult:
        """One batch with gradient accumulation and a single sparse-Adam
        update over the touched union at batch end."""
        batch = len(view_ids)
        grads = self.model.zero_gradients()
        # GPU-only engines run the sampled order; the planner still builds
        # the (identity-order) plan so working sets and the touched union
        # come from the same layer every engine uses.
        plan = self.plan_batch(view_ids, strategy="identity")

        if self.enhanced:
            per_view_loss, total_loss = self._accumulate_planned(
                plan, targets, self.model, grads, position_grad_hook
            )
        else:
            # Fused-culling path: every kernel streams the full model; the
            # plan's per-view in-frustum sets still feed the touched union
            # and the densification hook.
            per_view_loss = {}
            total_loss = 0.0
            for step in plan.steps:
                cam = self.cameras[step.view_id]
                loss, full_grads = self._forward_backward(
                    cam, self.model, targets[step.view_id], batch
                )
                for name, full in grads.items():
                    full += full_grads[name]
                if position_grad_hook is not None:
                    position_grad_hook(
                        step.view_id,
                        step.working_set,
                        full_grads["positions"][step.working_set],
                    )
                per_view_loss[step.view_id] = loss
                total_loss += loss / batch

        touched = self._finalize_sparse_adam(
            self.optimizer, self.model.parameters(), grads, plan.touched
        )
        return BatchResult(
            loss=total_loss,
            per_view_loss=per_view_loss,
            touched_gaussians=int(touched.size),
            order=list(plan.order),
        )

    def rebuild(self, model: GaussianModel, keep_rows: np.ndarray) -> None:
        self.model = model.clone()
        self.optimizer.resize(self.model.parameters(), keep_rows)
        if self.pool is not None:
            self._allocate()


@register_engine(
    "enhanced",
    description="enhanced baseline: GPU-only plus CLM's pre-rendering "
    "frustum culling (§5.1)",
)
def _make_enhanced_baseline(
    model: GaussianModel,
    cameras: Sequence[Camera],
    config: Optional[EngineConfig] = None,
) -> GpuOnlyEngine:
    """enhanced baseline: GPU-only plus pre-rendering frustum culling."""
    return GpuOnlyEngine(model, cameras, config, enhanced=True)
