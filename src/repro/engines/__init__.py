"""repro.engines — the unified training-engine API.

The four systems compared in the paper's §6.1 all implement the same
:class:`~repro.engines.base.Engine` protocol and return the same
:class:`~repro.engines.base.BatchResult`; they are constructed by name
through the registry::

    from repro.engines import available_engines, create_engine

    available_engines()   # ('clm', 'clm_sharded', 'naive', 'baseline', ...)
    engine = create_engine("clm", model, cameras, config)

For end-to-end training prefer the facade::

    import repro

    sess = repro.session(scene, engine="clm")
    sess.train(batches=50)

Adding a fifth system is one file: subclass
:class:`~repro.engines.base.EngineBase` and decorate it with
:func:`~repro.engines.registry.register_engine`.
"""

from repro.engines.base import BatchResult, Engine, EngineBase, PerfCounters
from repro.engines.registry import (
    UnknownEngineError,
    available_engines,
    create_engine,
    engine_descriptions,
    register_engine,
    unregister_engine,
)
from repro.engines.clm import CLMEngine
from repro.engines.clm_sharded import ShardedCLMEngine
from repro.engines.naive import NaiveOffloadEngine
from repro.engines.gpu_only import GpuOnlyEngine
from repro.engines.session import TrainingSession, session

__all__ = [
    "BatchResult",
    "Engine",
    "EngineBase",
    "PerfCounters",
    "UnknownEngineError",
    "available_engines",
    "create_engine",
    "engine_descriptions",
    "register_engine",
    "unregister_engine",
    "CLMEngine",
    "ShardedCLMEngine",
    "NaiveOffloadEngine",
    "GpuOnlyEngine",
    "TrainingSession",
    "session",
]
