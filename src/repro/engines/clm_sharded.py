"""Multi-device sharded CLM training (ROADMAP item 2).

:class:`ShardedCLMEngine` runs the CLM batch step over K *simulated*
devices: Gaussian rows are spatially sharded through the culling grid
(:func:`repro.sharding.spatial_shard`), each batch is planned **once**
through the ordinary :class:`~repro.planning.BatchPlanner` and then split
into per-device :class:`~repro.planning.BatchPlan` chains by the
shard-aware :meth:`BatchPlanner.plan_sharded` path (home device by
working-set plurality, deterministic work stealing between imbalanced
shards), and every device's microbatch chain executes against the shared
stores in device-id order.

Semantics on real arrays:

- *halo* rows (working-set members owned by a peer) are assembled into a
  device's working set exactly like owned rows — the functional stores
  play the role of the exchanged critical attributes — and their
  gradients accumulate into the same shared gradient buffers the owner
  reads, which is precisely the halo-gradient return of the simulated
  pipeline;
- each device's optimizer updates only the touched rows it *owns*
  (:attr:`ShardedBatchPlan.adam_rows`): the K row sets are disjoint with
  union equal to the global plan's ``touched``, so no row is ever
  double-stepped.  At K=1 the whole derivation collapses — same planner
  call, same RNG draws, same microbatch order, same Adam rows — and the
  engine is **bit-identical** to ``clm`` (pinned by
  ``tests/sharding/test_equivalence.py``).  At K>1 the devices execute
  views in a different interleaving, so gradient sums reassociate;
  results agree with ``clm`` to float rounding (~1e-16), not bit-for-bit.

Alongside the functional step, each batch is also scheduled on the
discrete-event simulator over the engine's
:class:`~repro.hardware.specs.DeviceTopology` (``gpu{k}.compute`` /
``gpu{k}.comm`` / ``cpu{k}.adam`` resources, halo exchange costed on the
PCIe links), and the resulting makespan and per-device busy seconds ride
on the :class:`~repro.engines.base.BatchResult` — the scaling numbers the
``sharding`` benchmark reports.

Fault tolerance (``EngineConfig.fault_schedule``): the engine threads a
:class:`repro.resilience.FaultInjector` through every batch.  Transient
faults (stragglers, lossy links) affect only the simulated schedule;
**fail-stop** triggers elastic recovery:

1. the batch executes with the doomed device still participating — its
   work is torn, and the failure is *detected at the batch barrier*;
2. the engine restores the last good in-memory snapshot (parameters,
   both optimizers, the RNG stream — see
   :mod:`repro.resilience.recovery`), discarding the torn batch: with
   the default ``recovery_snapshot_every=1`` exactly **one batch of
   work is lost** per fail-stop;
3. the surviving rows are re-sharded with :func:`spatial_shard` over the
   K-1 remaining devices (the plan cache is cleared so ordering-RNG
   draws replay exactly as a fresh restart from the snapshot would);
4. the same batch re-executes on the survivors and its result is
   returned, with ``recovery_s`` / ``lost_batches`` stamped — the
   post-recovery trajectory is bit-identical to a fault-free run
   restarted from the same snapshot on the surviving device set
   (pinned by ``tests/resilience/test_recovery.py``).

The engine inherits :meth:`CLMEngine._setup` unchanged, so the resolved
kernel backend (``EngineConfig.kernel_backend``, see :mod:`repro.kernels`)
threads through identically: both packed optimizers and every device's
render path execute on the same backend, the identity rides
``PerfCounters.kernel_backend`` and the plan fingerprints, and the K=1
bit-identity with ``clm`` holds per backend (the fingerprinted plans and
the fused float64 kernels are backend-parity-pinned by
``tests/kernels/``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import attributes
from repro.core.stores import GpuWorkingSet
from repro.engines.base import BatchResult, PositionGradHook
from repro.engines.clm import CLMEngine
from repro.engines.registry import register_engine
from repro.gaussians.model import GaussianModel
from repro.hardware.kernels import KernelCostModel
from repro.hardware.simulator import Simulator
from repro.hardware.specs import (
    HOST,
    RTX4090_TESTBED,
    DeviceTopology,
    Testbed,
)
from repro.resilience.faults import BatchFaultState, FaultInjector
from repro.resilience.recovery import (
    capture_engine_state,
    restore_engine_state,
)
from repro.sharding.partition import spatial_shard
from repro.sharding.pipeline import add_sharded_batch


@register_engine(
    "clm_sharded",
    description="CLM sharded across K simulated devices: spatial row "
    "shards, per-device plans with halo exchange and work stealing, "
    "per-device utilization from the discrete-event simulator, elastic "
    "fail-stop recovery under an injected fault schedule",
)
class ShardedCLMEngine(CLMEngine):
    """CLM over a :class:`DeviceTopology` of K simulated devices."""

    def _setup(self, model: GaussianModel) -> None:
        super()._setup(model)
        cfg = self.config
        if cfg.topology is not None:
            self.topology = cfg.topology
        else:
            self.topology = DeviceTopology.homogeneous(
                RTX4090_TESTBED, max(1, int(cfg.num_devices))
            )
        self.num_devices = self.topology.num_devices
        #: Topology device ids still alive, in id order.  Shard index k of
        #: the current assignment executes on device ``alive[k]``.
        self.alive: List[int] = list(range(self.num_devices))
        # Cost model for the per-batch simulated schedule, built from the
        # topology's (homogeneous) device + host + host-link specs.
        self._costs = KernelCostModel(
            Testbed(
                name=self.topology.name,
                gpu=self.topology.device(0),
                cpu=self.topology.host,
                pcie=self.topology.link(HOST, 0),
            )
        )
        self.injector: Optional[FaultInjector] = (
            FaultInjector(cfg.fault_schedule)
            if cfg.fault_schedule is not None
            else None
        )
        self._reshard()
        # Recovery snapshots are only maintained under an injected fault
        # schedule (they copy params + moments every batch); the elastic
        # remove_device() path treats the *current* state as the
        # snapshot when none is kept.
        self._snapshot = (
            capture_engine_state(self, batches_trained=0)
            if self.injector is not None
            else None
        )

    def _reshard(self) -> None:
        """(Re)partition rows across the *surviving* devices from the
        current critical attributes — at setup, after every densify/prune
        rebuild, and after fail-stop recovery."""
        self.assignment = spatial_shard(
            self.gpu_store.positions,
            self.gpu_store.log_scales,
            self.gpu_store.quaternions,
            len(self.alive),
        )

    # -- elastic recovery ----------------------------------------------
    def remove_device(self, device: int) -> None:
        """Administratively fail ``device``: restore the last good
        snapshot (the current state when no snapshot is kept), shrink the
        alive set, and re-shard the rows over the survivors.

        This is the recovery path minus the fault detection — the
        equivalence tests use it to build the fault-free twin restarted
        from the same snapshot.
        """
        if device not in self.alive:
            raise ValueError(f"device {device} is not alive")
        if len(self.alive) == 1:
            raise RuntimeError("cannot remove the last surviving device")
        if self._snapshot is not None:
            restore_engine_state(self, self._snapshot)
        self.alive.remove(device)
        self._reshard()
        # Replaying from the snapshot must consume ordering-RNG draws
        # exactly like a fresh restart: memoized plans skip the draw, so
        # the cache restarts cold alongside the restored RNG state.
        self.planner.cache.clear()

    def _recover(self, failed_devices: Sequence[int]) -> None:
        """Fail-stop recovery: roll back to the last good snapshot and
        re-shard over the survivors (assumes a snapshot exists — the
        injector path always keeps one)."""
        survivors = [d for d in self.alive if d not in set(failed_devices)]
        if not survivors:
            raise RuntimeError(
                f"all devices failed at batch {self.batches_trained}; "
                f"no survivors to recover onto"
            )
        restore_engine_state(self, self._snapshot)
        self.alive = survivors
        self._reshard()
        self.planner.cache.clear()

    # ------------------------------------------------------------------
    def _train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook] = None,
    ) -> BatchResult:
        """One sharded CLM step under the (optional) fault schedule.

        Fault-free batches go straight through :meth:`_execute_batch`.
        When the injector reports a fail-stop for this batch, the torn
        attempt is discarded at the barrier, recovery restores the last
        snapshot and re-shards the survivors, and the same batch
        re-executes on them — its result carries the recovery
        accounting.
        """
        state: Optional[BatchFaultState] = None
        if self.injector is not None:
            state = self.injector.begin_batch(self.batches_trained)
        result = self._execute_batch(
            view_ids, targets, position_grad_hook, state
        )
        if state is not None and state.new_failures:
            # The barrier has retired every device chain of the torn
            # attempt — this is the detection point.  Discard and recover.
            t0 = time.perf_counter()
            lost = max(
                1,
                self.batches_trained - self._snapshot.batches_trained + 1,
            )
            self._recover(state.new_failures)
            result = self._execute_batch(
                view_ids, targets, position_grad_hook, state
            )
            result.recovery_s = time.perf_counter() - t0
            result.lost_batches = lost
            result.failed_devices = len(state.new_failures)
        if self.injector is not None:
            every = max(1, int(self.config.recovery_snapshot_every))
            if (self.batches_trained + 1) % every == 0:
                self._snapshot = capture_engine_state(
                    self, batches_trained=self.batches_trained + 1
                )
        return result

    def _execute_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook: Optional[PositionGradHook],
        fault_state: Optional[BatchFaultState] = None,
    ) -> BatchResult:
        """One sharded CLM attempt: plan globally, split, execute per
        device.

        Devices execute sequentially in id order (they are simulated — the
        concurrency lives in the discrete-event schedule), so gradient
        accumulation into the shared stores is deterministic.  All
        optimizer updates run at batch end over per-device *owned* row
        sets: a device's owned rows may receive halo gradient
        contributions from any peer's microbatches, so no owned row is
        final until every device's chain has retired.
        """
        cfg = self.config
        batch = len(view_ids)
        sets = self.cull_views(view_ids)
        cams = [self.cameras[v] for v in view_ids]
        splan = self.planner.plan_sharded(
            sets,
            list(view_ids),
            self.assignment,
            cameras=cams,
            num_gaussians=self.num_gaussians,
            work_stealing=cfg.work_stealing,
        )
        plan = splan.global_plan
        touched = plan.touched
        self.cpu_store.zero_grads(touched)
        self.gpu_store.zero_grads(touched)

        total_loss = 0.0
        per_view_loss: Dict[int, float] = {}
        loaded = stored = cached = 0
        for dplan in splan.device_plans:
            if not dplan.steps:
                continue
            working = GpuWorkingSet(
                self.cpu_store,
                self.gpu_store,
                pool=self.pool,
                num_pixels=self._num_pixels,
            )
            carried = None
            for step in dplan.steps:
                model_i = working.assemble(
                    step.working_set, step.loads, step.cached, carried
                )
                cam = self.cameras[step.view_id]
                loss, grads = self._forward_backward(
                    cam, model_i, targets[step.view_id], batch
                )
                per_view_loss[step.view_id] = loss
                total_loss += loss / batch
                working.add_grads(grads)
                if position_grad_hook is not None:
                    position_grad_hook(
                        step.view_id, step.working_set, grads["positions"]
                    )
                carried = working.retire(step.stores, step.carried)
            working.release()
            loaded += working.counters.loaded_gaussians
            stored += working.counters.stored_gaussians
            cached += working.counters.cached_gaussians

        # Batch-end owner updates, one disjoint row set per device.  The
        # non-critical lanes go through the overlap runtime (cpu{k}.adam
        # in the simulated schedule); the critical update runs on each
        # device's resident rows.
        for rows in splan.adam_rows:
            if rows.size:
                self.runtime.submit(self._apply_noncritical_adam, rows)
        for rows in splan.adam_rows:
            self._apply_critical_adam(rows)
        self.runtime.barrier()
        stats = self.runtime.drain_stats()
        self._step_adam_s += stats.task_s
        self._step_overlap_hidden_s += stats.hidden_s

        makespan, device_busy, link_retries = self._simulate_batch(
            splan, fault_state
        )
        return BatchResult(
            loss=total_loss,
            per_view_loss=per_view_loss,
            touched_gaussians=int(touched.size),
            order=list(plan.order),
            loaded_gaussians=loaded,
            stored_gaussians=stored,
            cached_gaussians=cached,
            loaded_bytes=attributes.noncritical_bytes(loaded),
            stored_bytes=attributes.noncritical_bytes(stored),
            adam_chunk_sizes=[int(r.size) for r in splan.adam_rows],
            halo_gaussians=splan.halo_gaussians,
            halo_bytes=splan.halo_bytes,
            stolen_microbatches=splan.num_steals,
            sim_makespan_s=makespan,
            device_busy_s=device_busy,
            link_retries=link_retries,
        )

    def _simulate_batch(
        self,
        splan,
        fault_state: Optional[BatchFaultState] = None,
    ) -> "tuple[float, Dict[int, float], int]":
        """Schedule this batch's per-device DAG on the topology and read
        off makespan + per-device compute busy seconds (keyed by real
        device id) + link retransmissions charged by degraded links."""
        sim = Simulator(topology=self.topology)
        costed = self.topology
        compute_scale = None
        retries_before = 0
        if fault_state is not None and self.injector is not None:
            costed = self.injector.degraded_topology(
                self.topology, fault_state
            )
            compute_scale = fault_state.slowdowns or None
            retries_before = self.injector.stats.link_retries
        add_sharded_batch(
            sim,
            self._costs,
            splan,
            costed,
            count_scale=1.0,
            num_pixels=self._num_pixels,
            total_gaussians=float(self.num_gaussians),
            device_ids=self.alive,
            compute_scale=compute_scale,
        )
        schedule = sim.run()
        util = schedule.utilization(self.topology.compute_resources())
        busy = {
            dev: util.busy_s.get(self.topology.compute_resource(dev), 0.0)
            for dev in self.alive
        }
        link_retries = (
            self.injector.stats.link_retries - retries_before
            if self.injector is not None
            else 0
        )
        return schedule.makespan, busy, link_retries

    # ------------------------------------------------------------------
    def rebuild(self, model: GaussianModel, keep_rows: np.ndarray) -> None:
        super().rebuild(model, keep_rows)
        self._reshard()
        if self._snapshot is not None:
            # Row counts changed; the old snapshot is unrestorable.
            self._snapshot = capture_engine_state(
                self, batches_trained=self.batches_trained
            )
