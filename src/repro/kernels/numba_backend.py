"""Optional numba JIT kernel backend — fused single-pass hot loops.

Where the NumPy reference streams each slab through ~10 whole-tensor ops
(one memory pass per op), these kernels walk the CSR bins once per tile in
``prange`` (tiles write disjoint pixels/entries, so the parallel loop is
race-free) and keep the entire compositing recurrence in registers:

- ``raster_forward_slab``: per pixel, one front-to-back sweep over the
  tile's depth-sorted bin fuses falloff, thresholding, the transmittance
  recurrence and colour accumulation — like the paper's CUDA kernels.  No
  blend state is materialized (``retains_blend_state = False``).
- ``raster_backward_slab``: fused *recompute* of the blending state (the
  CUDA-style trade the memory model assumes) plus the suffix-sum alpha
  gradient, staged per CSR entry — entries are unique per (tile, splat),
  so tiles never contend — then folded into the per-Gaussian rows with the
  shared ``_segment_sum``.
- ``adam_fused_update``: the ~14 whole-array passes of the NumPy kernel
  collapsed into one row-parallel pass over the packed ``(N, width)``
  operands.  The scalar op order replicates the reference exactly
  (``fastmath=False`` → no FMA contraction, IEEE rounding per op), so the
  float64 path is *bit-identical* to NumPy, preserving the repo's
  cross-engine functional-equivalence guarantees.

The import is guarded: without numba the backend registers as unavailable
and every caller degrades to the reference.  Float32 blend state and
float32 gradient staging are declined via :meth:`supports` — numba's
dtype promotion differs from NumPy's value-based casting there — and fall
back per-op to NumPy.  Compilation is lazy (first use) and cached both
per-spec (:meth:`KernelBackend.compile`) and on disk (``cache=True``).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.kernels.registry import (
    KERNEL_OPS,
    KernelBackend,
    KernelSpec,
    register_backend,
)
from repro.optim.kernels import fused_adam_update, tables_for

try:  # guarded optional dependency
    import numba as _NUMBA
    from numba import prange
except Exception:  # pragma: no cover - exercised via monkeypatch in tests
    _NUMBA = None
    prange = range


# ----------------------------------------------------------------------
# Kernel bodies (plain Python at module level, jitted lazily).  The
# arithmetic mirrors the reference implementations op for op — see the
# in-place sequence in rasterizer._group_blend_state and
# optim.kernels.fused_adam_update — so float64 results stay within the
# 1e-10 parity bar (bit-identical for Adam, reassociation-only differences
# for the BLAS-reduced raster sums).
# ----------------------------------------------------------------------


def _forward_kernel(
    offsets, order, tile_ids, tiles_x, ts,
    means_x, means_y, conic_a, conic_b, conic_c, opac, colors, bg,
    alpha_threshold, t_min, max_alpha,
    canvas_rgb, canvas_t,
):
    num_tiles = tile_ids.size
    pixels = ts * ts
    for i in prange(num_tiles):
        start = offsets[i]
        end = offsets[i + 1]
        t_id = tile_ids[i]
        x0 = (t_id % tiles_x) * ts
        y0 = (t_id // tiles_x) * ts
        for p in range(pixels):
            px = x0 + (p % ts) + 0.5
            py = y0 + (p // ts) + 0.5
            t = 1.0
            r0 = 0.0
            r1 = 0.0
            r2 = 0.0
            for e in range(start, end):
                row = order[e]
                dx = px - means_x[row]
                dy = py - means_y[row]
                tmp = dx * dy * conic_b[row]
                power = (
                    (dx * dx * conic_a[row] + tmp) + tmp
                ) + dy * dy * conic_c[row]
                power *= -0.5
                if power > 0.0:
                    power = 0.0
                w = np.exp(power)
                alpha_raw = opac[row] * w
                if alpha_raw >= alpha_threshold:
                    alpha_eff = (
                        alpha_raw if alpha_raw < max_alpha else max_alpha
                    )
                    if t > t_min:
                        wgt = alpha_eff * t
                        r0 += wgt * colors[row, 0]
                        r1 += wgt * colors[row, 1]
                        r2 += wgt * colors[row, 2]
                    t *= 1.0 - alpha_eff
            canvas_rgb[t_id, p, 0] = r0 + t * bg[0]
            canvas_rgb[t_id, p, 1] = r1 + t * bg[1]
            canvas_rgb[t_id, p, 2] = r2 + t * bg[2]
            canvas_t[t_id, p] = t


def _backward_kernel(
    offsets, order, tile_ids, tiles_x, ts,
    means_x, means_y, conic_a, conic_b, conic_c, opac, colors,
    g_tiles, bg,
    alpha_threshold, t_min, max_alpha,
    d_colors_e, d_opac_e, d_mean_e, d_conic_e,
):
    num_tiles = tile_ids.size
    pixels = ts * ts
    for i in prange(num_tiles):
        start = offsets[i]
        end = offsets[i + 1]
        n = end - start
        if n == 0:
            continue
        t_id = tile_ids[i]
        x0 = (t_id % tiles_x) * ts
        y0 = (t_id // tiles_x) * ts
        # Per-tile scratch for the recomputed blend state, reused across
        # the tile's pixels.
        w_e = np.empty(n)
        ar_e = np.empty(n)
        a_e = np.empty(n)
        tb_e = np.empty(n)
        cg_e = np.empty(n)
        contrib = np.empty(n)
        for p in range(pixels):
            px = x0 + (p % ts) + 0.5
            py = y0 + (p // ts) + 0.5
            gp0 = g_tiles[t_id, p, 0]
            gp1 = g_tiles[t_id, p, 1]
            gp2 = g_tiles[t_id, p, 2]
            # Pass 1: recompute the forward blend state of this pixel and
            # the total blended contribution (the cumsum's last element).
            t = 1.0
            total = 0.0
            for k in range(n):
                row = order[start + k]
                dx = px - means_x[row]
                dy = py - means_y[row]
                tmp = dx * dy * conic_b[row]
                power = (
                    (dx * dx * conic_a[row] + tmp) + tmp
                ) + dy * dy * conic_c[row]
                power *= -0.5
                if power > 0.0:
                    power = 0.0
                w = np.exp(power)
                alpha_raw = opac[row] * w
                alpha_eff = 0.0
                if alpha_raw >= alpha_threshold:
                    alpha_eff = (
                        alpha_raw if alpha_raw < max_alpha else max_alpha
                    )
                w_e[k] = w
                ar_e[k] = alpha_raw
                a_e[k] = alpha_eff
                tb_e[k] = t
                cg = (
                    colors[row, 0] * gp0
                    + colors[row, 1] * gp1
                    + colors[row, 2] * gp2
                )
                cg_e[k] = cg
                c_k = 0.0
                if alpha_raw >= alpha_threshold and t > t_min:
                    c_k = (alpha_eff * t) * cg
                contrib[k] = c_k
                total += c_k
                t *= 1.0 - alpha_eff
            t_final = t
            bg_term = t_final * (gp0 * bg[0] + gp1 * bg[1] + gp2 * bg[2])
            # Pass 2: suffix-sum alpha gradient, staged per CSR entry.
            csum = 0.0
            cap = 1.0 - max_alpha
            for k in range(n):
                e = start + k
                row = order[e]
                alpha_eff = a_e[k]
                alpha_raw = ar_e[k]
                tb = tb_e[k]
                csum += contrib[k]
                suffix = (total - csum) + bg_term
                one_minus = 1.0 - alpha_eff
                if one_minus < cap:
                    one_minus = cap
                d_ae = -(suffix / one_minus)
                if alpha_raw >= alpha_threshold and tb > t_min:
                    d_ae += tb * cg_e[k]
                    wgt = alpha_eff * tb
                    d_colors_e[e, 0] += wgt * gp0
                    d_colors_e[e, 1] += wgt * gp1
                    d_colors_e[e, 2] += wgt * gp2
                if alpha_raw >= alpha_threshold and alpha_raw < max_alpha:
                    d_opac_e[e] += w_e[k] * d_ae
                    dp = d_ae * alpha_raw
                    dx = px - means_x[row]
                    dy = py - means_y[row]
                    d_mean_e[e, 0] += dp * (
                        conic_a[row] * dx + conic_b[row] * dy
                    )
                    d_mean_e[e, 1] += dp * (
                        conic_b[row] * dx + conic_c[row] * dy
                    )
                    d_conic_e[e, 0] += -0.5 * dp * dx * dx
                    d_conic_e[e, 1] += -0.5 * dp * dx * dy
                    d_conic_e[e, 2] += -0.5 * dp * dy * dy


def _adam_kernel(params, grads, m, v, bc1, rsqrt_bc2, lr, beta1, beta2, eps):
    n, width = params.shape
    omb1 = 1.0 - beta1
    omb2 = 1.0 - beta2
    for i in prange(n):
        b1i = bc1[i]
        rsi = rsqrt_bc2[i]
        for j in range(width):
            g = grads[i, j]
            mi = m[i, j] * beta1 + omb1 * g
            vi = v[i, j] * beta2 + (g * g) * omb2
            m[i, j] = mi
            v[i, j] = vi
            denom = np.sqrt(vi) * rsi + eps
            params[i, j] -= ((mi / denom) * lr[j]) / b1i


_JITTED = None


def _jitted():
    """Compile the kernel bodies once per process (then per numba
    signature on first call; ``cache=True`` persists across processes)."""
    global _JITTED
    if _JITTED is None:
        jit = _NUMBA.njit(parallel=True, cache=True, fastmath=False)
        _JITTED = {
            "forward": jit(_forward_kernel),
            "backward": jit(_backward_kernel),
            "adam": jit(_adam_kernel),
        }
    return _JITTED


# ----------------------------------------------------------------------
# Op wrappers (the compiled callables handed out by the backend)
# ----------------------------------------------------------------------


def _raster_forward(bins, aug, settings, bg, canvas_rgb, canvas_t):
    if bins.num_tiles == 0:
        return None
    _jitted()["forward"](
        bins.offsets, bins.order, bins.tile_ids,
        bins.tiles_x, bins.tile_size,
        aug.means_x, aug.means_y,
        aug.conic_a, aug.conic_b, aug.conic_c,
        aug.opac, aug.colors,
        np.asarray(bg, dtype=np.float64),
        float(settings.alpha_threshold),
        float(settings.transmittance_min),
        float(settings.max_alpha),
        canvas_rgb, canvas_t,
    )
    return None  # no blend state retained (recomputed backward)


def _raster_backward(
    bins, aug, settings, g_tiles, bg,
    d_colors, d_opac, d_means2d, d_conics,
    blend_cache=None,
):
    from repro.gaussians.rasterizer_grad import _segment_sum

    if bins.num_tiles == 0:
        return
    entries = bins.num_entries
    d_colors_e = np.zeros((entries, 3))
    d_opac_e = np.zeros(entries)
    d_mean_e = np.zeros((entries, 2))
    d_conic_e = np.zeros((entries, 3))
    _jitted()["backward"](
        bins.offsets, bins.order, bins.tile_ids,
        bins.tiles_x, bins.tile_size,
        aug.means_x, aug.means_y,
        aug.conic_a, aug.conic_b, aug.conic_c,
        aug.opac, aug.colors,
        g_tiles, np.asarray(bg, dtype=np.float64),
        float(settings.alpha_threshold),
        float(settings.transmittance_min),
        float(settings.max_alpha),
        d_colors_e, d_opac_e, d_mean_e, d_conic_e,
    )
    size = d_opac.size
    rows = bins.order
    d_colors += _segment_sum(rows, d_colors_e, size)
    d_opac += _segment_sum(rows, d_opac_e, size)
    d_means2d += _segment_sum(rows, d_mean_e, size)
    dc = np.empty((entries, 2, 2))
    dc[:, 0, 0] = d_conic_e[:, 0]
    dc[:, 0, 1] = d_conic_e[:, 1]
    dc[:, 1, 0] = d_conic_e[:, 1]
    dc[:, 1, 1] = d_conic_e[:, 2]
    d_conics += _segment_sum(rows, dc, size)


def _adam_fused(params, grads, m, v, t, lr, beta1, beta2, eps):
    if np.ndim(t) == 0:
        # Dense (scalar-step) callers: the row-parallel kernel wants the
        # per-row correction vectors; scalar steps stay on the reference.
        fused_adam_update(params, grads, m, v, t, lr, beta1, beta2, eps)
        return
    if params.shape[0] == 0:
        return
    bc1, rsqrt_bc2 = tables_for(beta1, beta2).lookup(
        np.asarray(t, dtype=np.int64)
    )
    lr_vec = np.ascontiguousarray(
        np.broadcast_to(
            np.asarray(lr, dtype=np.float64), (params.shape[1],)
        )
    )
    _jitted()["adam"](
        params, grads, m, v, bc1, rsqrt_bc2, lr_vec,
        float(beta1), float(beta2), float(eps),
    )


@register_backend("numba")
class NumbaKernelBackend(KernelBackend):
    """Optional JIT backend: fused prange loops, float64 only."""

    priority = 10
    description = (
        "numba JIT (optional): fused single-pass tile compositing + "
        "row-parallel Adam; float64 ops only, per-op NumPy fallback"
    )
    retains_blend_state = False

    def available(self) -> bool:
        return _NUMBA is not None

    def version(self) -> Optional[str]:
        return getattr(_NUMBA, "__version__", None) if _NUMBA else None

    def capabilities(self) -> "frozenset[str]":
        return frozenset(KERNEL_OPS)

    def supports(self, spec: KernelSpec) -> bool:
        if spec.op not in self.capabilities():
            return False
        # The JIT kernels are float64-exact replicas of the reference op
        # order; float32 operands would hit numba's standard promotion
        # (not NumPy's value-based casting) and drift past the parity
        # bar, so those calls stay on the reference backend.
        if any(d.dtype != "float64" for d in spec.operands):
            return False
        if spec.op == "adam_fused_update":
            return all(d.rank == 2 for d in spec.operands)
        return True

    def _compile(self, spec: KernelSpec) -> Callable:
        _jitted()  # warm the process-level dispatcher cache
        if spec.op == "raster_forward_slab":
            return _raster_forward
        if spec.op == "raster_backward_slab":
            return _raster_backward
        return _adam_fused
