"""The NumPy reference kernel backend.

These are the tuned vectorized implementations the repo has shipped since
PR 4/5 — grouped ``(T, G, P)`` slab compositing with batched-BLAS blends
and ``np.bincount`` segment sums, and the ~14-pass in-place
:func:`repro.optim.kernels.fused_adam_update` — wrapped in the
:class:`~repro.kernels.registry.KernelBackend` protocol as the
always-available, priority-0 reference every other backend is pinned
against (and every per-op fallback lands on).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.kernels.registry import (
    KERNEL_OPS,
    KernelBackend,
    KernelSpec,
    register_backend,
)
from repro.optim.kernels import fused_adam_update


def _raster_forward(bins, aug, settings, bg, canvas_rgb, canvas_t):
    """Grouped slab compositing into the tile-major canvases, in place.

    Returns the list of per-slab blend states when
    ``settings.cache_blend_state`` asks for retention, else ``None`` —
    exactly the blend-cache contract of
    :func:`repro.gaussians.rasterizer.rasterize_forward`.
    """
    from repro.gaussians.rasterizer import (
        _group_blend_state,
        iter_tile_groups,
    )

    cache: Optional[List[dict]] = [] if settings.cache_blend_state else None
    for tix, g in iter_tile_groups(bins, settings.group_size):
        state = _group_blend_state(bins, aug, tix, g, settings)
        alpha_eff = state["alpha_eff"]
        t_before = state["t_before"]
        weights = alpha_eff * t_before
        weights *= state["active"]
        colors = aug.colors[state["rows"]]  # (T, G, 3)
        # Batched BLAS: (T, P, G) @ (T, G, 3) -> (T, P, 3).
        rgb = np.matmul(weights.transpose(0, 2, 1), colors)
        t_final = t_before[:, -1, :] * (1.0 - alpha_eff[:, -1, :])  # (T, P)
        t_ids = bins.tile_ids[tix]
        canvas_rgb[t_ids] = rgb + t_final[:, :, None] * bg
        canvas_t[t_ids] = t_final
        if cache is not None:
            cache.append(state)
    return cache


def _raster_backward(
    bins, aug, settings, g_tiles, bg,
    d_colors, d_opac, d_means2d, d_conics,
    blend_cache=None,
):
    """Grouped compositing gradient, consuming the forward blend cache
    when one was retained and recomputing slab-wise otherwise."""
    from repro.gaussians.rasterizer import (
        _group_blend_state,
        iter_tile_groups,
    )
    from repro.gaussians.rasterizer_grad import _accumulate_group

    groups = (
        blend_cache
        if blend_cache is not None
        else (
            _group_blend_state(bins, aug, tix, g, settings)
            for tix, g in iter_tile_groups(bins, settings.group_size)
        )
    )
    for state in groups:
        _accumulate_group(
            state, bins, aug, g_tiles, bg, settings,
            d_colors, d_opac, d_means2d, d_conics,
        )


@register_backend("numpy")
class NumpyKernelBackend(KernelBackend):
    """Always-available reference: vectorized NumPy, one memory pass/op."""

    priority = 0
    description = (
        "vectorized NumPy reference (always available; grouped slab "
        "compositing + fused in-place Adam)"
    )
    retains_blend_state = True

    def capabilities(self) -> "frozenset[str]":
        return frozenset(KERNEL_OPS)

    def version(self) -> Optional[str]:
        return np.__version__

    def _compile(self, spec: KernelSpec) -> Callable:
        if spec.op == "raster_forward_slab":
            return _raster_forward
        if spec.op == "raster_backward_slab":
            return _raster_backward
        return fused_adam_update
