"""Runtime-selected kernel backends for the substrate's hot loops.

Public surface of the MOT-style backend layer (ROADMAP item 1): the
:class:`KernelBackend` protocol, the :class:`KernelData`/:class:`KernelSpec`
layout descriptors, the decorator registry, and the resolution helpers
every call site uses (``resolve_backend`` → ``compile_with_fallback``).

The built-in backends are ``numpy`` (always-available reference) and
``numba`` (optional JIT, graceful fallback when absent) — see
``repro backends`` and the README's "Kernel backends" section.
"""

from repro.kernels.registry import (
    AUTO,
    ENV_VAR,
    KERNEL_OPS,
    REFERENCE_BACKEND,
    KernelBackend,
    KernelData,
    KernelSpec,
    UnknownBackendError,
    UnsupportedKernelError,
    adam_spec,
    available_backends,
    backend_descriptions,
    backend_status,
    compile_with_fallback,
    get_backend,
    raster_spec,
    register_backend,
    resolve_backend,
    resolve_backend_name,
    unregister_backend,
)

__all__ = [
    "AUTO",
    "ENV_VAR",
    "KERNEL_OPS",
    "REFERENCE_BACKEND",
    "KernelBackend",
    "KernelData",
    "KernelSpec",
    "UnknownBackendError",
    "UnsupportedKernelError",
    "adam_spec",
    "available_backends",
    "backend_descriptions",
    "backend_status",
    "compile_with_fallback",
    "get_backend",
    "raster_spec",
    "register_backend",
    "resolve_backend",
    "resolve_backend_name",
    "unregister_backend",
]
