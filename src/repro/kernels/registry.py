"""The kernel backend registry — runtime-selected compiled hot paths.

ROADMAP item 1: the substrate's hot loops (slab compositing in
:mod:`repro.gaussians.rasterizer` / ``rasterizer_grad`` and the fused Adam
update in :mod:`repro.optim.kernels`) are pure NumPy, which caps each op
at one memory pass.  This module is the MOT-style answer (cf. the
``CLFunctionEvaluator`` / ``CLFunction`` pattern from cbclab/MOT): a
:class:`KernelBackend` protocol with *capabilities* and a
``compile(spec)`` step, a :class:`KernelData` descriptor capturing the
dtype/rank/contiguity of the packed operands, and a decorator registry
mirroring :func:`repro.engines.registry.register_engine`::

    @register_backend("numpy")
    class NumpyKernelBackend(KernelBackend):
        ...

Backends are selected at runtime by :func:`resolve_backend`:

1. an explicit non-``auto`` name (``EngineConfig.kernel_backend``,
   ``RasterSettings.kernel_backend``, ``repro train --kernel-backend``)
   wins; a registered-but-unavailable name degrades to the reference
   backend with a warning (graceful fallback, never a crash);
2. otherwise the ``REPRO_KERNEL_BACKEND`` environment variable, when set;
3. otherwise ``auto``: the highest-priority *available* backend (the
   NumPy reference has priority 0 and is always available; JIT backends
   register with higher priorities).

Per-op capability checks run through :meth:`KernelBackend.supports`: a
backend that cannot execute one spec (e.g. a JIT kernel specialized to
contiguous float64 rows being handed float32 staging buffers) falls back
to the reference implementation for that op only — see
:func:`compile_with_fallback`.  Every backend is pinned against the
existing ``*_legacy`` comparators at the repo's 1e-10 parity bar by
``tests/kernels/``.
"""

from __future__ import annotations

import abc
import os
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

#: Environment override consulted by :func:`resolve_backend` when the
#: caller asks for ``auto`` (or passes no name at all).
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The always-available reference backend every fallback lands on.
REFERENCE_BACKEND = "numpy"

#: Sentinel name meaning "pick the fastest available backend".
AUTO = "auto"

#: The kernel operations a backend may implement.  ``raster_forward_slab``
#: composites one padded (T, G, P) tile slab, ``raster_backward_slab``
#: accumulates its compositing gradients, ``adam_fused_update`` is the
#: fused packed-row Adam step.
KERNEL_OPS = (
    "raster_forward_slab",
    "raster_backward_slab",
    "adam_fused_update",
)


class UnknownBackendError(ValueError):
    """Raised for backend names not in the registry."""


class UnsupportedKernelError(ValueError):
    """Raised by :meth:`KernelBackend.compile` for specs the backend's
    :meth:`~KernelBackend.supports` rejects."""


@dataclass(frozen=True)
class KernelData:
    """Layout descriptor of one kernel operand.

    Captures what a compiled kernel specializes on — element dtype, array
    rank, and C-contiguity — without holding the array itself, so specs
    are hashable compile-cache keys.
    """

    dtype: str
    rank: int = 0
    contiguous: bool = True

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "KernelData":
        arr = np.asarray(arr)
        return cls(
            dtype=str(arr.dtype),
            rank=int(arr.ndim),
            contiguous=bool(arr.flags["C_CONTIGUOUS"]),
        )


@dataclass(frozen=True)
class KernelSpec:
    """What to compile: an op name plus its operand layouts."""

    op: str
    operands: Tuple[KernelData, ...] = ()

    def dtypes(self) -> Tuple[str, ...]:
        return tuple(d.dtype for d in self.operands)


def raster_spec(op: str, dtype) -> KernelSpec:
    """Spec of a raster slab op over ``dtype`` blend-state tensors."""
    return KernelSpec(op, (KernelData(dtype=str(np.dtype(dtype)), rank=3),))


def adam_spec(*arrays: np.ndarray) -> KernelSpec:
    """Spec of the fused Adam update over the given packed operands."""
    return KernelSpec(
        "adam_fused_update",
        tuple(KernelData.from_array(a) for a in arrays),
    )


class KernelBackend(abc.ABC):
    """One implementation of the substrate's hot kernels.

    Subclasses set :attr:`name` / :attr:`priority` / :attr:`description`,
    report availability (JIT backends probe their import here), declare
    :meth:`capabilities`, and implement :meth:`_compile`.  ``compile``
    itself is final: it runs the capability check and caches the compiled
    callable per spec, so warm-up compilation happens once per signature.
    """

    name: str = "?"
    #: ``auto`` picks the highest-priority available backend; the NumPy
    #: reference sits at 0, JIT backends register above it.
    priority: int = 0
    description: str = ""
    #: Whether this backend's forward pass materializes the per-slab blend
    #: state that ``RasterSettings.cache_blend_state`` retains for the
    #: backward pass.  Fused JIT kernels recompute blending backward (like
    #: the paper's CUDA kernels) and set this False.
    retains_blend_state: bool = True

    def __init__(self) -> None:
        self._compiled: Dict[KernelSpec, Callable] = {}

    # -- identity -------------------------------------------------------
    def available(self) -> bool:
        """Whether this backend can execute in the current process."""
        return True

    def version(self) -> Optional[str]:
        """Version string of the backing implementation, if any."""
        return None

    # -- capability surface ---------------------------------------------
    @abc.abstractmethod
    def capabilities(self) -> "frozenset[str]":
        """The :data:`KERNEL_OPS` names this backend implements."""

    def supports(self, spec: KernelSpec) -> bool:
        """Whether :meth:`compile` would accept ``spec``.

        The base check is op membership; backends with layout
        restrictions (dtype, contiguity) refine this.
        """
        return spec.op in self.capabilities()

    # -- compilation ----------------------------------------------------
    def compile(self, spec: KernelSpec) -> Callable:
        """The compiled callable for ``spec``, cached per signature."""
        fn = self._compiled.get(spec)
        if fn is None:
            if not self.available():
                raise UnsupportedKernelError(
                    f"backend '{self.name}' is not available"
                )
            if not self.supports(spec):
                raise UnsupportedKernelError(
                    f"backend '{self.name}' does not support {spec}"
                )
            fn = self._compile(spec)
            self._compiled[spec] = fn
        return fn

    @abc.abstractmethod
    def _compile(self, spec: KernelSpec) -> Callable:
        """Build the callable for a supported ``spec``."""


_REGISTRY: Dict[str, KernelBackend] = {}

#: Backends shipped with the package (mirrors ``_BUILTIN_ENGINES``).
_BUILTIN_BACKENDS = ("numpy", "numba")


def _ensure_builtin_backends() -> None:
    """Import the built-in backend modules so their registrations run."""
    from repro.kernels import numba_backend, numpy_backend  # noqa: F401


def register_backend(name: str):
    """Class decorator adding a :class:`KernelBackend` to the registry.

    The class is instantiated immediately (construction must be cheap and
    must not import optional dependencies — probe those in
    :meth:`KernelBackend.available`).
    """

    def decorator(cls):
        if name in _REGISTRY:
            raise ValueError(
                f"kernel backend '{name}' is already registered "
                f"(by {type(_REGISTRY[name]).__name__})"
            )
        backend = cls()
        backend.name = name
        _REGISTRY[name] = backend
        return cls

    return decorator


def unregister_backend(name: str) -> None:
    """Remove a registered backend (tests/plugins only); built-ins stay."""
    if name in _BUILTIN_BACKENDS:
        raise ValueError(f"cannot unregister built-in backend '{name}'")
    _REGISTRY.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order (availability is a
    separate question — see :func:`backend_status`)."""
    _ensure_builtin_backends()
    return tuple(_REGISTRY)


def backend_descriptions() -> Dict[str, str]:
    """``{name: one-line description}`` for every registered backend."""
    _ensure_builtin_backends()
    return {name: b.description for name, b in _REGISTRY.items()}


def get_backend(name: str) -> KernelBackend:
    """The registered backend instance for ``name``.

    Raises :class:`UnknownBackendError` (a ``ValueError``) with the known
    names when ``name`` is not registered.
    """
    _ensure_builtin_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown kernel backend '{name}'; "
            f"choose from {available_backends()}"
        ) from None


def backend_status() -> "list[dict]":
    """One row per registered backend for reporting (``repro backends``)."""
    _ensure_builtin_backends()
    return [
        {
            "name": b.name,
            "available": b.available(),
            "version": b.version(),
            "priority": b.priority,
            "description": b.description,
        }
        for b in _REGISTRY.values()
    ]


def _auto_backend() -> KernelBackend:
    """Highest-priority available backend (ties break on registration
    order; the NumPy reference guarantees a non-empty candidate set)."""
    _ensure_builtin_backends()
    candidates = [b for b in _REGISTRY.values() if b.available()]
    return max(candidates, key=lambda b: b.priority)


def resolve_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend request to a usable backend instance.

    ``None``/``""``/``"auto"`` consult the ``REPRO_KERNEL_BACKEND``
    environment variable, then auto-select.  An explicit name must be
    registered (else :class:`UnknownBackendError`); a registered but
    unavailable backend — or an env override naming one — degrades to the
    reference backend with a :class:`RuntimeWarning` instead of failing,
    so a config written for a JIT-enabled host still runs everywhere.
    """
    from_env = False
    if name in (None, "", AUTO):
        env_name = os.environ.get(ENV_VAR, "").strip()
        if env_name and env_name != AUTO:
            name, from_env = env_name, True
        else:
            return _auto_backend()
    try:
        backend = get_backend(name)
    except UnknownBackendError:
        if not from_env:
            raise
        warnings.warn(
            f"{ENV_VAR}={name!r} names an unknown kernel backend; "
            f"falling back to auto selection",
            RuntimeWarning,
            stacklevel=2,
        )
        return _auto_backend()
    if not backend.available():
        warnings.warn(
            f"kernel backend '{name}' is not available in this "
            f"environment; falling back to '{REFERENCE_BACKEND}'",
            RuntimeWarning,
            stacklevel=2,
        )
        return get_backend(REFERENCE_BACKEND)
    return backend


def resolve_backend_name(name: Optional[str] = None) -> str:
    """The resolved backend's name (see :func:`resolve_backend`)."""
    return resolve_backend(name).name


def compile_with_fallback(
    backend: KernelBackend, spec: KernelSpec
) -> Tuple[Callable, KernelBackend]:
    """Compile ``spec`` on ``backend``, degrading per-op to the reference.

    Returns ``(callable, backend_actually_used)``.  This is the per-call
    capability gate: a JIT backend that cannot execute one particular
    layout (say, float32 blend state) hands exactly that op back to the
    NumPy reference while keeping every op it *can* run.

    Compilation *failures* degrade the same way: a backend that claims
    support but raises from ``compile(spec)`` mid-run (a JIT toolchain
    breaking under it, a driver fault) hands the op to the reference with
    a :class:`RuntimeWarning` instead of killing training — the returned
    backend identity records the fallback so callers can stamp the truth
    into their perf counters.  Only a failing *reference* compile raises.
    """
    if backend.available() and backend.supports(spec):
        try:
            return backend.compile(spec), backend
        except Exception as exc:
            if backend.name == REFERENCE_BACKEND:
                raise
            warnings.warn(
                f"kernel backend '{backend.name}' failed to compile "
                f"'{spec.op}' ({exc!r}); falling back to "
                f"'{REFERENCE_BACKEND}' for this op",
                RuntimeWarning,
                stacklevel=2,
            )
    reference = get_backend(REFERENCE_BACKEND)
    return reference.compile(spec), reference
