"""Deprecated location — precise caching moved to :mod:`repro.planning.caching`.

The transfer planner is part of the unified batch-planning layer now;
new code should build whole plans through
:class:`repro.planning.BatchPlanner` or import the primitives from
:mod:`repro.planning`.
"""

import warnings

from repro.planning.caching import (
    MicrobatchStep,
    build_transfer_plan,
    total_cached_count,
    total_load_count,
    total_store_count,
    validate_plan,
)

warnings.warn(
    "repro.core.caching is deprecated; use repro.planning (BatchPlanner / "
    "repro.planning.caching)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "MicrobatchStep",
    "build_transfer_plan",
    "total_load_count",
    "total_store_count",
    "total_cached_count",
    "validate_plan",
]
