"""Deprecated location — Adam planning moved to :mod:`repro.planning.adam_overlap`."""

import warnings

from repro.planning.adam_overlap import (
    adam_chunks,
    finalization_positions,
    overlap_fraction,
    touched_union,
)

warnings.warn(
    "repro.core.adam_overlap is deprecated; use repro.planning (BatchPlanner "
    "/ repro.planning.adam_overlap)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "adam_chunks",
    "finalization_positions",
    "overlap_fraction",
    "touched_union",
]
