"""Microbatch pipeline DAG construction (paper Figure 6, §5.3).

Builds the task graphs the discrete-event simulator executes:

- :func:`add_clm_batch` — CLM's pipelined batch, built from the *same*
  :class:`repro.planning.BatchPlan` the functional engine executes (so
  simulated and functional transfer volumes reconcile by construction):
  a scheduling task (TSP + culling), selective loads and gradient stores
  on the prioritized communication stream, forward/backward on the
  compute stream, eager CPU Adam chunks on the CPU thread, and a
  GPU-side Adam for the resident critical attributes.  Double buffering
  is encoded as ``LD_i`` depending on ``BWD_{i-2}`` (the buffer being
  overwritten must have been fully consumed); 1F1B interleaving on the
  single comm stream emerges from dependencies + the load-over-store
  priority (prefetch params, postpone gradient offload — §5.3).
- :func:`add_naive_batch` — Figure 3: bulk load, sequential per-image
  compute, bulk store, dense CPU Adam; nothing overlaps.
- :func:`add_gpu_only_batch` — the baselines: pure compute, with either
  fused culling (all N enter every kernel) or pre-rendering culling.

All builders return the task ids that the *next* batch must wait on, so a
multi-batch simulation chains steady-state batches correctly (the next
batch's culling needs all parameters updated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.hardware.kernels import KernelCostModel
from repro.hardware.metrics import CPU_ADAM, CPU_SCHED, GPU_COMM, GPU_COMPUTE
from repro.hardware.simulator import Simulator
from repro.planning.plan import BatchPlan

LOAD_PRIORITY = 2  # prefetch parameters first ...
STORE_PRIORITY = 1  # ... postpone gradient offloading (§5.3)


@dataclass
class BatchEndpoints:
    """Task ids later batches (and metrics) care about."""

    first_task: int
    last_compute: int
    last_comm: Optional[int]
    last_adam: Optional[int]
    barrier: List[int] = field(default_factory=list)  # deps for next batch


def add_clm_batch(
    sim: Simulator,
    costs: KernelCostModel,
    plan: BatchPlan,
    count_scale: float,
    num_pixels: int,
    total_gaussians: float,
    deps: Sequence[int] = (),
    enable_overlap_adam: bool = True,
    batch_tag: str = "",
    prev_cpu_adam: Optional[int] = None,
    blocked_load_counts: Optional[Sequence[float]] = None,
) -> BatchEndpoints:
    """Add one CLM training batch to the simulator, task-for-step from
    ``plan`` — the very :class:`~repro.planning.BatchPlan` the functional
    engine would execute.

    ``prev_cpu_adam`` / ``blocked_load_counts`` implement cross-batch
    pipelining (Figure 6's "Next Batch" under "Adam Finished"): the portion
    of each load whose rows are still pending in the previous batch's final
    CPU-Adam chunk waits for it; the rest starts as soon as culling is done,
    overlapping the previous batch's tail.
    """
    steps = plan.steps
    adam_chunk_counts = plan.adam_chunk_sizes
    batch = len(steps)
    if blocked_load_counts is not None and len(blocked_load_counts) != batch:
        raise ValueError("one blocked-load count per microbatch required")

    # Scheduling: frustum culling for the batch (GPU) + order optimization
    # (CPU).  The visibility-aware orders pay the TSP/sort cost (Table 4).
    sched_cost = (
        costs.tsp_schedule_time(batch)
        if plan.strategy in ("tsp", "gs_count")
        else 20e-6
    )
    sched = sim.add(
        f"SCHED{batch_tag}", CPU_SCHED, sched_cost, deps=deps, kind="sched"
    )
    cull = sim.add(
        f"CULL{batch_tag}",
        GPU_COMPUTE,
        batch * costs.cull_time(total_gaussians),
        deps=deps,
        kind="cull",
    )

    loads: List[int] = []
    bwds: List[int] = []
    stores: List[int] = []
    adams: List[int] = []
    prev_bwd: Optional[int] = None
    prev_adam: Optional[int] = None
    first = sched

    for i, step in enumerate(steps):
        n_load = step.num_loads * count_scale
        n_cached = step.cached.size * count_scale
        n_work = step.working_set.size * count_scale
        n_store = step.num_stores * count_scale
        n_blocked = 0.0
        if prev_cpu_adam is not None and blocked_load_counts is not None:
            n_blocked = min(blocked_load_counts[i] * count_scale, n_load)
        n_free = n_load - n_blocked

        ld_deps = [sched, cull]
        if i >= 2:
            ld_deps.append(bwds[i - 2])  # double buffer reuse
        ld_free = sim.add(
            f"LD{batch_tag}.{i}",
            GPU_COMM,
            costs.load_params_time(n_free) + costs.cache_copy_time(n_cached),
            deps=ld_deps,
            priority=LOAD_PRIORITY,
            kind="load",
            rx_bytes=costs.load_bytes(n_free),
            dram_write_bytes=costs.load_bytes(n_free + n_cached),
        )
        ld_parts = [ld_free]
        if n_blocked > 0:
            ld_parts.append(
                sim.add(
                    f"LDB{batch_tag}.{i}",
                    GPU_COMM,
                    costs.load_params_time(n_blocked),
                    deps=ld_deps + [prev_cpu_adam],
                    priority=LOAD_PRIORITY,
                    kind="load",
                    rx_bytes=costs.load_bytes(n_blocked),
                    dram_write_bytes=costs.load_bytes(n_blocked),
                )
            )
        loads.append(ld_parts[-1])

        fwd_deps = list(ld_parts)
        if prev_bwd is not None:
            fwd_deps.append(prev_bwd)
        fwd_time = costs.forward_time(n_work, num_pixels)
        bwd_time = costs.backward_time(n_work, num_pixels)
        bw = costs.testbed.gpu.dram_bandwidth
        fwd = sim.add(
            f"FWD{batch_tag}.{i}",
            GPU_COMPUTE,
            fwd_time + costs.pipeline_sync_overhead,
            deps=fwd_deps,
            kind="forward",
            # Rasterization kernels sustain ~1/3 of DRAM bandwidth
            # (read-heavy), calibrated against Table 7's DRAM rows.
            dram_read_bytes=0.25 * fwd_time * bw,
            dram_write_bytes=0.12 * fwd_time * bw,
        )
        bwd = sim.add(
            f"BWD{batch_tag}.{i}",
            GPU_COMPUTE,
            bwd_time,
            deps=[fwd],
            kind="backward",
            dram_read_bytes=0.25 * bwd_time * bw,
            dram_write_bytes=0.12 * bwd_time * bw,
        )
        bwds.append(bwd)
        prev_bwd = bwd

        st = sim.add(
            f"ST{batch_tag}.{i}",
            GPU_COMM,
            costs.store_grads_time(n_store),
            deps=[bwd],
            priority=STORE_PRIORITY,
            kind="store",
            tx_bytes=costs.store_bytes(n_store),
            # Accumulating offload reads old gradients back (§5.3).
            rx_bytes=costs.store_bytes(n_store),
        )
        stores.append(st)

        if enable_overlap_adam:
            ad_deps = [st]
            if prev_adam is not None:
                ad_deps.append(prev_adam)
            ad = sim.add(
                f"ADAM{batch_tag}.{i}",
                CPU_ADAM,
                costs.cpu_adam_sparse_time(adam_chunk_counts[i] * count_scale),
                deps=ad_deps,
                kind="adam",
                batch=batch_tag,
            )
            adams.append(ad)
            prev_adam = ad

    if not enable_overlap_adam:
        total = sum(adam_chunk_counts) * count_scale
        ad = sim.add(
            f"ADAM{batch_tag}.all",
            CPU_ADAM,
            costs.cpu_adam_sparse_time(total),
            deps=[stores[-1]],
            kind="adam",
            batch=batch_tag,
        )
        adams.append(ad)

    touched = sum(adam_chunk_counts) * count_scale
    gpu_adam = sim.add(
        f"GADAM{batch_tag}",
        GPU_COMPUTE,
        costs.gpu_adam_time(touched),
        deps=[bwds[-1]],
        kind="gpu_adam",
    )
    return BatchEndpoints(
        first_task=first,
        last_compute=gpu_adam,
        last_comm=stores[-1],
        last_adam=adams[-1] if adams else None,
        barrier=[gpu_adam] + ([adams[-1]] if adams else []),
    )


def add_naive_batch(
    sim: Simulator,
    costs: KernelCostModel,
    working_counts: Sequence[float],
    count_scale: float,
    num_pixels: int,
    total_gaussians: float,
    deps: Sequence[int] = (),
    batch_tag: str = "",
) -> BatchEndpoints:
    """Figure 3: LD all -> compute batch -> ST all -> dense CPU Adam."""
    ld = sim.add(
        f"LDALL{batch_tag}",
        GPU_COMM,
        costs.load_all_params_time(total_gaussians),
        deps=deps,
        kind="load",
        rx_bytes=costs.load_all_bytes(total_gaussians),
    )
    prev = ld
    cull = sim.add(
        f"CULL{batch_tag}",
        GPU_COMPUTE,
        len(working_counts) * costs.cull_time(total_gaussians),
        deps=[ld],
        kind="cull",
    )
    prev = cull
    bw = costs.testbed.gpu.dram_bandwidth
    for i, count in enumerate(working_counts):
        n_work = count * count_scale
        fwd_time = costs.forward_time(n_work, num_pixels)
        bwd_time = costs.backward_time(n_work, num_pixels)
        fwd = sim.add(
            f"FWD{batch_tag}.{i}",
            GPU_COMPUTE,
            fwd_time,
            deps=[prev],
            kind="forward",
            dram_read_bytes=0.25 * fwd_time * bw,
            dram_write_bytes=0.12 * fwd_time * bw,
        )
        prev = sim.add(
            f"BWD{batch_tag}.{i}",
            GPU_COMPUTE,
            bwd_time,
            deps=[fwd],
            kind="backward",
            dram_read_bytes=0.25 * bwd_time * bw,
            dram_write_bytes=0.12 * bwd_time * bw,
        )
    st = sim.add(
        f"STALL{batch_tag}",
        GPU_COMM,
        costs.store_all_grads_time(total_gaussians),
        deps=[prev],
        kind="store",
        tx_bytes=costs.load_all_bytes(total_gaussians),
    )
    adam = sim.add(
        f"ADAM{batch_tag}",
        CPU_ADAM,
        costs.cpu_adam_dense_time(total_gaussians),
        deps=[st],
        kind="adam",
        batch=batch_tag,
    )
    return BatchEndpoints(
        first_task=ld,
        last_compute=prev,
        last_comm=st,
        last_adam=adam,
        barrier=[adam],
    )


def add_gpu_only_batch(
    sim: Simulator,
    costs: KernelCostModel,
    working_counts: Sequence[float],
    count_scale: float,
    num_pixels: int,
    total_gaussians: float,
    enhanced: bool,
    deps: Sequence[int] = (),
    batch_tag: str = "",
) -> BatchEndpoints:
    """GPU-only baselines: sequential per-image compute, on-GPU Adam."""
    prev: Optional[int] = None
    first: Optional[int] = None
    if enhanced:
        prev = sim.add(
            f"CULL{batch_tag}",
            GPU_COMPUTE,
            len(working_counts) * costs.cull_time(total_gaussians),
            deps=deps,
            kind="cull",
        )
        first = prev
    for i, count in enumerate(working_counts):
        if enhanced:
            n_in = count * count_scale
            fwd_time = costs.forward_time(n_in, num_pixels)
            bwd_time = costs.backward_time(n_in, num_pixels)
        else:
            fwd_time = costs.fused_forward_time(total_gaussians, num_pixels)
            bwd_time = costs.fused_backward_time(total_gaussians, num_pixels)
        fwd = sim.add(
            f"FWD{batch_tag}.{i}",
            GPU_COMPUTE,
            fwd_time,
            deps=[prev] if prev is not None else deps,
            kind="forward",
        )
        if first is None:
            first = fwd
        prev = sim.add(
            f"BWD{batch_tag}.{i}",
            GPU_COMPUTE,
            bwd_time,
            deps=[fwd],
            kind="backward",
        )
    adam = sim.add(
        f"GADAM{batch_tag}",
        GPU_COMPUTE,
        costs.gpu_adam_time(total_gaussians * 59.0 / 10.0),
        deps=[prev],
        kind="gpu_adam",
    )
    assert first is not None
    return BatchEndpoints(
        first_task=first,
        last_compute=adam,
        last_comm=None,
        last_adam=None,
        barrier=[adam],
    )
