"""Timed experiment runner: simulate training on the paper's testbeds.

Connects the pieces: a scaled synthetic scene supplies measured in-frustum
index sets; the :class:`repro.planning.BatchPlanner` turns each sampled
batch into a :class:`~repro.planning.BatchPlan` — the same plan object the
functional CLM engine executes; the pipeline builders emit the task DAG at
*paper-scale* counts (``count_scale`` multiplies every set size, DESIGN.md
§5); the simulator schedules it; the metrics module reads off throughput,
communication volume, runtime decomposition, GPU idle CDFs, Adam trailing
time and hardware utilization — i.e. everything Figures 11-15 and Tables
5/7 plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import TimingConfig
from repro.core.culling_index import CullingIndex
from repro.core.pipeline import add_clm_batch, add_gpu_only_batch, add_naive_batch
from repro.hardware.kernels import KernelCostModel
from repro.hardware.metrics import (
    HardwareUtilization,
    adam_trailing_time,
    communication_volume,
    gpu_idle_rate_cdf,
    hardware_utilization,
    runtime_decomposition,
)
from repro.hardware.simulator import ScheduleResult, Simulator
from repro.planning.planner import BatchPlanner
from repro.scenes.datasets import Scene
from repro.utils.rng import make_rng

SYSTEM_NAMES = ("baseline", "enhanced", "naive", "clm")


@dataclass
class TimedRunResult:
    """Everything measured from one simulated training run."""

    system: str
    scene: str
    testbed: str
    paper_num_gaussians: float
    num_batches: int
    batch_size: int
    schedule: ScheduleResult
    images_per_second: float
    load_bytes_per_batch: float
    store_bytes_per_batch: float
    decomposition: Dict[str, float]
    utilization: HardwareUtilization
    adam_trailing_s: float

    def idle_cdf(self, sample_rate_hz: float = 10_000.0):
        return gpu_idle_rate_cdf(self.schedule, sample_rate_hz)


def _sample_batches(
    index: CullingIndex, batch_size: int, num_batches: int, rng
) -> List[List[int]]:
    """Random without-replacement batch sampling, reshuffling per epoch —
    the standard trainer behaviour the ordering ablation perturbs."""
    ids = list(index.view_ids())
    if len(ids) < batch_size:
        raise ValueError(
            f"scene has {len(ids)} views < batch size {batch_size}"
        )
    batches: List[List[int]] = []
    pool: List[int] = []
    while len(batches) < num_batches:
        if len(pool) < batch_size:
            pool = list(rng.permutation(ids))
        batches.append([int(pool.pop()) for _ in range(batch_size)])
    return batches


def run_timed(
    system: str,
    scene: Scene,
    index: Optional[CullingIndex] = None,
    config: Optional[TimingConfig] = None,
) -> TimedRunResult:
    """Simulate ``num_batches`` of training and collect metrics."""
    config = config or TimingConfig()
    if system not in SYSTEM_NAMES:
        raise ValueError(f"unknown system '{system}'; choose from {SYSTEM_NAMES}")
    if index is None:
        index = CullingIndex.build(scene.model, scene.cameras)

    paper_n = (
        config.paper_num_gaussians
        if config.paper_num_gaussians is not None
        else float(scene.spec.paper_num_gaussians)
    )
    batch_size = config.batch_size or scene.spec.batch_size
    count_scale = paper_n / index.num_gaussians
    pixels = scene.spec.paper_pixels
    costs = KernelCostModel(
        config.testbed, splats_per_pixel=scene.spec.splats_per_pixel
    )
    rng = make_rng(config.seed)
    batches = _sample_batches(index, batch_size, config.num_batches, rng)
    cam_by_id = {c.view_id: c for c in scene.cameras}
    planner = BatchPlanner(
        ordering=config.ordering,
        enable_cache=config.enable_cache,
        cache_size=config.plan_cache_size,
        seed=rng,
    )

    sim = Simulator()
    deps: Sequence[int] = ()
    total_loads = 0
    total_stores = 0
    prev_cpu_adam = None
    prev_final_chunk = None
    for b, view_ids in enumerate(batches):
        sets = index.sets_for(view_ids)
        if system == "clm":
            cams = [cam_by_id[v] for v in view_ids]
            plan = planner.plan(
                sets, view_ids, cameras=cams,
                num_gaussians=index.num_gaussians,
            )
            # Cross-batch pipelining: only the loads whose rows are still
            # pending in the previous batch's final Adam chunk must wait.
            blocked = None
            if prev_final_chunk is not None and prev_final_chunk.size:
                blocked = [
                    float(np.intersect1d(
                        s.loads, prev_final_chunk, assume_unique=True
                    ).size)
                    for s in plan.steps
                ]
            endpoints = add_clm_batch(
                sim,
                costs,
                plan,
                count_scale,
                pixels,
                paper_n,
                deps=deps,
                enable_overlap_adam=config.enable_overlap_adam,
                batch_tag=f".b{b}",
                prev_cpu_adam=prev_cpu_adam,
                blocked_load_counts=blocked,
            )
            total_loads += plan.total_loads
            total_stores += plan.total_stores
            prev_cpu_adam = endpoints.last_adam
            prev_final_chunk = plan.adam_chunks[-1]
            deps = [endpoints.last_compute]
            continue
        elif system == "naive":
            endpoints = add_naive_batch(
                sim,
                costs,
                [s.size for s in sets],
                count_scale,
                pixels,
                paper_n,
                deps=deps,
                batch_tag=f".b{b}",
            )
        else:
            endpoints = add_gpu_only_batch(
                sim,
                costs,
                [s.size for s in sets],
                count_scale,
                pixels,
                paper_n,
                enhanced=(system == "enhanced"),
                deps=deps,
                batch_tag=f".b{b}",
            )
        deps = endpoints.barrier

    schedule = sim.run()
    volumes = communication_volume(schedule)
    total_images = sum(len(b) for b in batches)
    decomposition = runtime_decomposition(schedule)
    util = hardware_utilization(schedule, config.testbed)

    if system == "clm":
        load_bytes = costs.load_bytes(total_loads * count_scale) / len(batches)
        store_bytes = costs.store_bytes(total_stores * count_scale) / len(batches)
    elif system == "naive":
        load_bytes = costs.load_all_bytes(paper_n)
        store_bytes = costs.load_all_bytes(paper_n)
    else:
        load_bytes = 0.0
        store_bytes = 0.0

    return TimedRunResult(
        system=system,
        scene=scene.name,
        testbed=config.testbed.name,
        paper_num_gaussians=paper_n,
        num_batches=len(batches),
        batch_size=batch_size,
        schedule=schedule,
        images_per_second=total_images / schedule.makespan,
        load_bytes_per_batch=load_bytes,
        store_bytes_per_batch=store_bytes,
        decomposition=decomposition,
        utilization=util,
        adam_trailing_s=adam_trailing_time(schedule),
    )


def communication_volume_per_batch(
    scene: Scene,
    index: CullingIndex,
    config: TimingConfig,
    system: str = "clm",
) -> float:
    """Average CPU->GPU *parameter* bytes per batch (the Figure 14 metric).

    ``system='naive'`` reports the whole-model volume; for CLM the
    ordering/caching settings of ``config`` select the ablation variant.
    """
    costs = KernelCostModel(config.testbed)
    paper_n = (
        config.paper_num_gaussians
        if config.paper_num_gaussians is not None
        else float(scene.spec.paper_num_gaussians)
    )
    if system == "naive":
        return costs.load_all_bytes(paper_n)
    batch_size = config.batch_size or scene.spec.batch_size
    count_scale = paper_n / index.num_gaussians
    rng = make_rng(config.seed)
    batches = _sample_batches(index, batch_size, config.num_batches, rng)
    cam_by_id = {c.view_id: c for c in scene.cameras}
    planner = BatchPlanner(
        ordering=config.ordering,
        enable_cache=config.enable_cache,
        cache_size=config.plan_cache_size,
        seed=rng,
    )
    loads = 0
    for view_ids in batches:
        sets = index.sets_for(view_ids)
        cams = [cam_by_id[v] for v in view_ids]
        plan = planner.plan(
            sets, view_ids, cameras=cams, num_gaussians=index.num_gaussians
        )
        loads += plan.total_loads
    return costs.load_bytes(loads * count_scale) / len(batches)
