"""Attribute-wise offload schema (paper §4.1).

Frustum culling needs only position, scale and rotation — 10 of the 59
floats per Gaussian — so CLM keeps those *selection-critical* attributes
resident in GPU memory and offloads the other 49 (*non-critical*: spherical
harmonics and opacity) to pinned CPU memory.

This module is the single source of truth for that split: float counts,
byte sizes, the mapping onto :class:`~repro.gaussians.model.GaussianModel`
parameter names, and the padded row layout the selective loading kernel
uses (§5.2: attributes of one Gaussian are concatenated and cache-line
aligned in pinned memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

BYTES_PER_FLOAT = 4
CACHE_LINE_BYTES = 64
CACHE_LINE_FLOATS = CACHE_LINE_BYTES // BYTES_PER_FLOAT


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute group of a Gaussian."""

    name: str  # GaussianModel parameter name
    floats: int
    selection_critical: bool


#: Table 1 of the paper, annotated with the §4.1 split.
ATTRIBUTE_SCHEMA: Tuple[AttributeSpec, ...] = (
    AttributeSpec("positions", 3, selection_critical=True),
    AttributeSpec("log_scales", 3, selection_critical=True),
    AttributeSpec("quaternions", 4, selection_critical=True),
    AttributeSpec("sh", 48, selection_critical=False),
    AttributeSpec("opacity_logits", 1, selection_critical=False),
)

CRITICAL_NAMES: Tuple[str, ...] = tuple(
    a.name for a in ATTRIBUTE_SCHEMA if a.selection_critical
)
NONCRITICAL_NAMES: Tuple[str, ...] = tuple(
    a.name for a in ATTRIBUTE_SCHEMA if not a.selection_critical
)


def total_floats() -> int:
    """59 — every learnable float of one Gaussian."""
    return sum(a.floats for a in ATTRIBUTE_SCHEMA)


def critical_floats() -> int:
    """10 — floats that stay GPU-resident (<20% of the footprint, §4.1)."""
    return sum(a.floats for a in ATTRIBUTE_SCHEMA if a.selection_critical)


def noncritical_floats() -> int:
    """49 — floats offloaded to pinned CPU memory."""
    return total_floats() - critical_floats()


def padded_row_floats(floats: int = None) -> int:
    """Floats per Gaussian row after cache-line padding (§5.2).

    49 non-critical floats pad to 64 (4 cache lines), so each Gaussian's
    offloaded attributes occupy whole cache lines and DMA gathers never
    split lines.
    """
    n = noncritical_floats() if floats is None else floats
    lines = (n + CACHE_LINE_FLOATS - 1) // CACHE_LINE_FLOATS
    return lines * CACHE_LINE_FLOATS


def critical_bytes(num_gaussians: float) -> float:
    return num_gaussians * critical_floats() * BYTES_PER_FLOAT


def noncritical_bytes(num_gaussians: float) -> float:
    return num_gaussians * noncritical_floats() * BYTES_PER_FLOAT


def padded_noncritical_bytes(num_gaussians: float) -> float:
    """Pinned-memory footprint per Gaussian row including padding."""
    return num_gaussians * padded_row_floats() * BYTES_PER_FLOAT


def attribute_floats(name: str) -> int:
    for a in ATTRIBUTE_SCHEMA:
        if a.name == name:
            return a.floats
    raise KeyError(f"unknown attribute {name}")


def model_param_shapes(sh_basis: int) -> Dict[str, tuple]:
    """Per-parameter trailing shapes for a model with ``sh_basis`` basis
    functions (the functional models may store fewer than 16)."""
    return {
        "positions": (3,),
        "log_scales": (3,),
        "quaternions": (4,),
        "sh": (sh_basis, 3),
        "opacity_logits": (),
    }
