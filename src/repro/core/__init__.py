"""CLM — the paper's contribution.

Sparsity-guided CPU offloading for 3DGS training:

- :mod:`repro.core.attributes` — the selection-critical / non-critical
  attribute split (§4.1);
- :mod:`repro.core.culling_index` — pre-rendering frustum culling producing
  per-view in-frustum index sets (§5.1);
- :mod:`repro.core.caching` — precise Gaussian caching transfer plans
  (§4.2.1);
- :mod:`repro.core.adam_overlap` — finalization maps for overlapped CPU
  Adam (§4.2.2);
- :mod:`repro.core.scheduler` / :mod:`repro.core.orders` — TSP pipeline
  order optimization and the ablation orderings (§4.2.3, Table 4);
- :mod:`repro.core.pipeline` — the 1F1B microbatch pipeline DAG (Figure 6);
- :mod:`repro.core.memory_model` — GPU/pinned memory accounting and OOM
  boundaries (Figures 8/10, Table 6);
- :mod:`repro.core.stores` — functional pinned-CPU / GPU working-set
  parameter stores (the selective loading kernel equivalents, §5.2);
- :mod:`repro.core.engine` / :mod:`repro.core.naive` /
  :mod:`repro.core.gpu_only` — the four systems compared in §6;
- :mod:`repro.core.trainer` — the training loop tying it together.
"""

from repro.core.config import EngineConfig, TimingConfig
from repro.core.culling_index import CullingIndex
from repro.core.caching import MicrobatchStep, build_transfer_plan
from repro.core.engine import CLMEngine
from repro.core.naive import NaiveOffloadEngine
from repro.core.gpu_only import GpuOnlyEngine
from repro.core.memory_model import (
    SYSTEMS,
    max_model_size,
    memory_breakdown,
    pinned_memory_bytes,
)
from repro.core.trainer import Trainer, TrainerConfig
from repro.core.checkpoint import (
    load_model,
    restore_into_engine,
    save_checkpoint,
)

__all__ = [
    "save_checkpoint",
    "load_model",
    "restore_into_engine",
    "EngineConfig",
    "TimingConfig",
    "CullingIndex",
    "MicrobatchStep",
    "build_transfer_plan",
    "CLMEngine",
    "NaiveOffloadEngine",
    "GpuOnlyEngine",
    "SYSTEMS",
    "max_model_size",
    "memory_breakdown",
    "pinned_memory_bytes",
    "Trainer",
    "TrainerConfig",
]
