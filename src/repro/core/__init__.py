"""CLM — the paper's contribution.

Sparsity-guided CPU offloading for 3DGS training:

- :mod:`repro.core.attributes` — the selection-critical / non-critical
  attribute split (§4.1);
- :mod:`repro.core.culling_index` — pre-rendering frustum culling producing
  per-view in-frustum index sets (§5.1);
- :mod:`repro.core.pipeline` — the 1F1B microbatch pipeline DAG (Figure 6);
- :mod:`repro.core.memory_model` — GPU/pinned memory accounting and OOM
  boundaries (Figures 8/10, Table 6);
- :mod:`repro.core.stores` — functional pinned-CPU / GPU working-set
  parameter stores (the selective loading kernel equivalents, §5.2);
- :mod:`repro.core.trainer` — the training loop tying it together.

The engine implementations themselves moved to :mod:`repro.engines`
(CLM, naive offloading, GPU-only baseline/enhanced behind one
:class:`~repro.engines.base.Engine` protocol and registry), and the
planning modules (caching, orders, adam_overlap) moved to
:mod:`repro.planning` behind the :class:`~repro.planning.BatchPlanner`;
deprecation shims keep the old import paths alive, and the names
re-exported here are kept for backward compatibility.
"""

from repro.core.config import EngineConfig, TimingConfig
from repro.core.culling_index import CullingIndex
from repro.planning.caching import MicrobatchStep, build_transfer_plan
from repro.core.memory_model import (
    SYSTEMS,
    max_model_size,
    memory_breakdown,
    pinned_memory_bytes,
)
from repro.core.trainer import Trainer, TrainerConfig
from repro.core.checkpoint import (
    CheckpointError,
    CheckpointManager,
    load_model,
    read_checkpoint,
    restore_into_engine,
    save_checkpoint,
)

#: Engine re-exports resolved lazily (PEP 562) so that importing
#: ``repro.core`` never drags in ``repro.engines`` — the engines import
#: core submodules, and eager re-exports here would create a cycle.
_ENGINE_EXPORTS = {
    "CLMEngine": "repro.engines.clm",
    "NaiveOffloadEngine": "repro.engines.naive",
    "GpuOnlyEngine": "repro.engines.gpu_only",
    "BatchResult": "repro.engines.base",
}


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        import importlib

        return getattr(importlib.import_module(_ENGINE_EXPORTS[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "save_checkpoint",
    "load_model",
    "read_checkpoint",
    "restore_into_engine",
    "CheckpointError",
    "CheckpointManager",
    "EngineConfig",
    "TimingConfig",
    "CullingIndex",
    "MicrobatchStep",
    "build_transfer_plan",
    "BatchResult",
    "CLMEngine",
    "NaiveOffloadEngine",
    "GpuOnlyEngine",
    "SYSTEMS",
    "max_model_size",
    "memory_breakdown",
    "pinned_memory_bytes",
    "Trainer",
    "TrainerConfig",
]
