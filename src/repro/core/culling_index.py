"""Pre-rendering frustum culling index (paper §5.1 + §3).

Computes and stores, for each camera view, the sorted index set ``S_i`` of
Gaussians intersecting the view frustum — using only the selection-critical
attributes that CLM keeps GPU-resident (§4.1).  Every other CLM component
consumes these sets: the transfer planner (cache intersections), the TSP
scheduler (symmetric differences), the overlapped-Adam planner
(finalization maps) and the memory model (rho statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.frustum import cull_gaussians
from repro.gaussians.model import GaussianModel


@dataclass
class CullingIndex:
    """Per-view in-frustum index sets over a fixed model snapshot."""

    num_gaussians: int
    sets: Dict[int, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        model: GaussianModel,
        cameras: Sequence[Camera],
    ) -> "CullingIndex":
        """Cull every camera against the model's critical attributes.

        Deliberately takes the three critical arrays through the model but
        never touches ``model.sh`` / ``model.opacity_logits`` — mirroring
        that culling runs before any non-critical attribute is loaded.
        """
        index = cls(num_gaussians=model.num_gaussians)
        for cam in cameras:
            index.sets[cam.view_id] = cull_gaussians(
                cam, model.positions, model.log_scales, model.quaternions
            )
        return index

    @classmethod
    def from_sets(cls, num_gaussians: int, sets: Dict[int, np.ndarray]) -> "CullingIndex":
        return cls(num_gaussians=num_gaussians, sets=dict(sets))

    # ------------------------------------------------------------------
    def set_for(self, view_id: int) -> np.ndarray:
        try:
            return self.sets[view_id]
        except KeyError:
            raise KeyError(f"view {view_id} not in culling index") from None

    def sets_for(self, view_ids: Iterable[int]) -> List[np.ndarray]:
        return [self.set_for(v) for v in view_ids]

    def sparsity(self, view_id: int) -> float:
        """rho_i = |S_i| / N (§3)."""
        if self.num_gaussians == 0:
            return 0.0
        return self.set_for(view_id).size / self.num_gaussians

    def sparsities(self) -> np.ndarray:
        """rho for every indexed view, ordered by view id."""
        ids = sorted(self.sets)
        return np.array([self.sparsity(v) for v in ids])

    def view_ids(self) -> List[int]:
        return sorted(self.sets)

    def mean_set_size(self) -> float:
        if not self.sets:
            return 0.0
        return float(np.mean([s.size for s in self.sets.values()]))

    def max_set_size(self) -> int:
        if not self.sets:
            return 0
        return int(max(s.size for s in self.sets.values()))
