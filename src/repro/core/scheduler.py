"""Deprecated location — the §4.2.3 TSP order optimizer moved to
:mod:`repro.planning.tsp_order`.

This module was never the discrete-event scheduler (that is
:class:`repro.hardware.simulator.Simulator`); the old name conflated the
two, hence the move.
"""

import warnings

from repro.planning.tsp_order import (
    distance_matrix,
    held_karp_path,
    nearest_neighbor_path,
    or_opt_pass,
    path_cost,
    stochastic_local_search,
    tsp_order,
    two_opt_pass,
)

warnings.warn(
    "repro.core.scheduler is deprecated; the TSP order optimizer lives at "
    "repro.planning.tsp_order (the discrete-event scheduler is "
    "repro.hardware.simulator.Simulator)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "distance_matrix",
    "path_cost",
    "nearest_neighbor_path",
    "two_opt_pass",
    "or_opt_pass",
    "stochastic_local_search",
    "held_karp_path",
    "tsp_order",
]
