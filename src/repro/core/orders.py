"""Deprecated location — ordering strategies moved to :mod:`repro.planning.orders`."""

import warnings

from repro.planning.orders import (
    IDENTITY,
    STRATEGIES,
    order_microbatches,
    principal_axis,
)

warnings.warn(
    "repro.core.orders is deprecated; use repro.planning (BatchPlanner / "
    "repro.planning.orders)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["STRATEGIES", "IDENTITY", "order_microbatches", "principal_axis"]
