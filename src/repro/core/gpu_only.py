"""Deprecated location — see :mod:`repro.engines.gpu_only`.

``GpuOnlyBatchResult`` was folded into the unified
:class:`repro.engines.base.BatchResult`; the alias below keeps old
annotations importable.
"""

import warnings

from repro.engines.base import BatchResult
from repro.engines.gpu_only import GpuOnlyEngine

warnings.warn(
    "repro.core.gpu_only is deprecated; use repro.engines "
    "(GpuOnlyEngine / BatchResult)",
    DeprecationWarning,
    stacklevel=2,
)

GpuOnlyBatchResult = BatchResult

__all__ = ["GpuOnlyEngine", "GpuOnlyBatchResult"]
