"""Deprecated location — see :mod:`repro.engines.gpu_only`.

``GpuOnlyBatchResult`` was folded into the unified
:class:`repro.engines.base.BatchResult`; the alias below keeps old
annotations importable.
"""

from repro.engines.base import BatchResult
from repro.engines.gpu_only import GpuOnlyEngine

GpuOnlyBatchResult = BatchResult

__all__ = ["GpuOnlyEngine", "GpuOnlyBatchResult"]
