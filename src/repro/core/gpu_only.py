"""GPU-only training engines: the paper's two non-offloading comparators.

- **baseline** — the Grendel-GS + gsplat configuration of §6.1: frustum
  culling is fused into the rendering kernels, so every kernel streams all
  ``N`` Gaussians and activation state is allocated for all of them.
- **enhanced baseline** — baseline plus CLM's pre-rendering frustum culling
  (§5.1): the in-frustum set is computed first and only those Gaussians
  enter the rasterizer, cutting compute and activation memory.

Functionally the two produce identical gradients (out-of-frustum Gaussians
contribute nothing); they differ in the simulated cost/memory models and —
in this functional implementation — in whether the rasterizer input is
pre-gathered.  The equivalence test relies on exactly that property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import adam_overlap
from repro.core.config import EngineConfig
from repro.core.memory_model import (
    ACT_PER_GAUSSIAN,
    ACT_PER_PIXEL,
    MODEL_STATE_FULL_BPG,
)
from repro.gaussians.camera import Camera
from repro.gaussians.frustum import cull_gaussians
from repro.gaussians.loss import photometric_loss, psnr
from repro.gaussians.model import GaussianModel
from repro.gaussians.render import render, render_backward
from repro.hardware.memory import MemoryPool
from repro.optim.sparse_adam import SparseAdam
from repro.utils.rng import make_rng


@dataclass
class GpuOnlyBatchResult:
    loss: float
    per_view_loss: Dict[int, float]
    touched_gaussians: int


class GpuOnlyEngine:
    """Whole-model-on-GPU training (baseline / enhanced baseline)."""

    def __init__(
        self,
        model: GaussianModel,
        cameras: Sequence[Camera],
        config: Optional[EngineConfig] = None,
        enhanced: bool = False,
    ) -> None:
        self.config = config or EngineConfig()
        self.enhanced = enhanced
        self.model = model.clone()
        self.cameras: Dict[int, Camera] = {c.view_id: c for c in cameras}
        self.optimizer = SparseAdam(self.model.parameters(), config=self.config.adam)
        self._rng = make_rng(self.config.seed)
        self._render, self._render_backward = self.config.resolve_renderer()
        self._num_pixels = max(
            (c.num_pixels for c in self.cameras.values()), default=0
        )
        self.pool: Optional[MemoryPool] = None
        if self.config.gpu_capacity_bytes is not None:
            self.pool = MemoryPool(self.config.gpu_capacity_bytes, name="gpu")
            self._allocate()

    def _allocate(self) -> None:
        """Reserve the canonical GPU footprint; raises OutOfMemoryError when
        the simulated card is too small (the Figure 8 mechanism)."""
        assert self.pool is not None
        n = self.model.num_gaussians
        self.pool.alloc("model_states", MODEL_STATE_FULL_BPG * n)
        act_gaussians = n  # fused path: activations for every Gaussian
        if self.enhanced:
            rho_max = 0.0
            for cam in self.cameras.values():
                s = cull_gaussians(
                    cam,
                    self.model.positions,
                    self.model.log_scales,
                    self.model.quaternions,
                )
                rho_max = max(rho_max, s.size / max(1, n))
            act_gaussians = rho_max * n
        self.pool.alloc(
            "activations",
            ACT_PER_GAUSSIAN * act_gaussians + ACT_PER_PIXEL * self._num_pixels,
        )

    @property
    def num_gaussians(self) -> int:
        return self.model.num_gaussians

    def snapshot_model(self) -> GaussianModel:
        return self.model.clone()

    # ------------------------------------------------------------------
    def train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook=None,
    ) -> GpuOnlyBatchResult:
        """One batch with gradient accumulation and a single sparse-Adam
        update over the touched union at batch end."""
        cfg = self.config
        batch = len(view_ids)
        grads = self.model.zero_gradients()
        total_loss = 0.0
        per_view_loss: Dict[int, float] = {}
        sets: List[np.ndarray] = []

        for vid in view_ids:
            cam = self.cameras[vid]
            if self.enhanced:
                s = cull_gaussians(
                    cam,
                    self.model.positions,
                    self.model.log_scales,
                    self.model.quaternions,
                )
                sub = self.model.gather(s)
                result = self._render(cam, sub, cfg.raster)
                loss, g_img = photometric_loss(
                    result.image, targets[vid], cfg.ssim_lambda
                )
                sub_grads = self._render_backward(result, sub, g_img / batch)
                for name, full in grads.items():
                    full[s] += sub_grads[name]
                if position_grad_hook is not None:
                    position_grad_hook(vid, s, sub_grads["positions"])
            else:
                s = cull_gaussians(
                    cam,
                    self.model.positions,
                    self.model.log_scales,
                    self.model.quaternions,
                )
                result = self._render(cam, self.model, cfg.raster)
                loss, g_img = photometric_loss(
                    result.image, targets[vid], cfg.ssim_lambda
                )
                full_grads = self._render_backward(result, self.model, g_img / batch)
                for name, full in grads.items():
                    full += full_grads[name]
                if position_grad_hook is not None:
                    position_grad_hook(vid, s, full_grads["positions"][s])
            sets.append(s)
            per_view_loss[vid] = loss
            total_loss += loss / batch

        touched = adam_overlap.touched_union(sets)
        self.optimizer.step_rows(self.model.parameters(), grads, touched)
        return GpuOnlyBatchResult(
            loss=total_loss,
            per_view_loss=per_view_loss,
            touched_gaussians=int(touched.size),
        )

    # ------------------------------------------------------------------
    def evaluate(self, view_ids: Sequence[int], targets: Dict[int, np.ndarray]) -> float:
        values = []
        for vid in view_ids:
            img = self._render(self.cameras[vid], self.model, self.config.raster).image
            values.append(psnr(img, targets[vid]))
        return float(np.mean(values)) if values else 0.0

    def rebuild(self, model: GaussianModel, keep_rows: np.ndarray) -> None:
        self.model = model.clone()
        self.optimizer.resize(self.model.parameters(), keep_rows)
        if self.pool is not None:
            self._allocate()
