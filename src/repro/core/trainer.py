"""The training loop: batches, densification, evaluation.

This plays the role Grendel plays for the paper's artifact — the framework
CLM plugs into (§5).  Any engine registered with
:mod:`repro.engines.registry` slots in behind the same
:class:`repro.engines.base.Engine` interface, which is what makes the
functional-equivalence tests and the Figure 9 quality experiment
straightforward to express.  Engines are constructed by *name* only —
this module deliberately imports no engine classes.

Prefer the :class:`repro.engines.session.TrainingSession` facade
(``repro.session(scene, engine="clm")``) for new code; ``Trainer`` remains
the loop implementation underneath it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import EngineConfig
from repro.gaussians.densify import (
    DensificationState,
    DensifyConfig,
    densify_and_prune,
)
from repro.gaussians.loss import psnr
from repro.gaussians.model import GaussianModel
from repro.optim.schedule import ExponentialDecay, ShWarmup
from repro.scenes.images import TrainableScene
from repro.utils.rng import make_rng


def _registry():
    # Local import: repro.engines.session imports this module, so a
    # module-scope import of repro.engines would close an import cycle.
    from repro.engines import registry

    return registry


def __getattr__(name: str):
    if name == "ENGINE_TYPES":
        warnings.warn(
            "repro.core.trainer.ENGINE_TYPES is deprecated; use "
            "repro.engines.available_engines()",
            DeprecationWarning,
            stacklevel=2,
        )
        return _registry().available_engines()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class TrainerConfig:
    """Loop-level knobs (engine-level ones live in EngineConfig)."""

    num_batches: int = 50
    batch_size: int = 4
    densify_every: int = 0  # 0 disables densification
    densify_start: int = 10
    densify_stop: int = 10_000
    max_gaussians: Optional[int] = None
    eval_every: int = 0  # 0 = evaluate only at the end
    seed: int = 0
    # Reference-3DGS training schedule features: exponential position-lr
    # decay, progressive SH-degree warm-up, and periodic opacity reset
    # (clamp opacities down so stale Gaussians must re-earn contribution
    # or get pruned — §2.1's densify/prune companion trick).
    position_lr_decay: Optional["ExponentialDecay"] = None
    sh_warmup: Optional["ShWarmup"] = None
    opacity_reset_every: int = 0  # 0 disables
    opacity_reset_ceiling: float = 0.1


@dataclass
class TrainingHistory:
    losses: List[float] = field(default_factory=list)
    psnrs: List[float] = field(default_factory=list)
    eval_batches: List[int] = field(default_factory=list)
    gaussian_counts: List[int] = field(default_factory=list)
    loaded_bytes: float = 0.0
    stored_bytes: float = 0.0
    #: Summed wall-clock time of the engine's train_batch calls (eval and
    #: densification time excluded — this is the throughput denominator).
    wall_time_s: float = 0.0

    @property
    def final_psnr(self) -> float:
        return self.psnrs[-1] if self.psnrs else float("nan")

    @property
    def batches_per_second(self) -> float:
        """Functional throughput over the recorded batches (the history
        does not know the batch size; ``engine.perf.images_per_second``
        reports per-image throughput)."""
        if self.wall_time_s <= 0.0 or not self.losses:
            return 0.0
        return len(self.losses) / self.wall_time_s


def make_engine(
    engine_type: str,
    model: GaussianModel,
    cameras,
    config: EngineConfig,
):
    """Deprecated alias for :func:`repro.engines.registry.create_engine`."""
    warnings.warn(
        "make_engine is deprecated; use repro.engines.create_engine",
        DeprecationWarning,
        stacklevel=2,
    )
    return _registry().create_engine(engine_type, model, cameras, config)


class Trainer:
    """Fits a Gaussian model to a :class:`TrainableScene`."""

    def __init__(
        self,
        scene: TrainableScene,
        engine_type: str = "clm",
        engine_config: Optional[EngineConfig] = None,
        trainer_config: Optional[TrainerConfig] = None,
        densify_config: Optional[DensifyConfig] = None,
        initial_model: Optional[GaussianModel] = None,
        sh_degree: int = 1,
    ) -> None:
        self.scene = scene
        self.config = trainer_config or TrainerConfig()
        self.engine_config = engine_config or EngineConfig(
            batch_size=self.config.batch_size
        )
        self.densify_config = densify_config or DensifyConfig(
            max_gaussians=self.config.max_gaussians
        )
        self.engine_type = engine_type
        if initial_model is None:
            initial_model = GaussianModel.from_point_cloud(
                scene.init_points,
                colors=scene.init_colors,
                sh_degree=sh_degree,
                seed=self.config.seed,
            )
        self.engine = _registry().create_engine(
            engine_type, initial_model, scene.cameras, self.engine_config
        )
        self.targets: Dict[int, np.ndarray] = {
            cam.view_id: img for cam, img in zip(scene.cameras, scene.images)
        }
        self._rng = make_rng(self.config.seed)
        self._pool: List[int] = []
        self.densify_state = DensificationState(self.engine.num_gaussians)

    # ------------------------------------------------------------------
    def _next_batch(self) -> List[int]:
        ids = [cam.view_id for cam in self.scene.cameras]
        if len(self._pool) < self.config.batch_size:
            self._pool = list(self._rng.permutation(ids))
        return [int(self._pool.pop()) for _ in range(self.config.batch_size)]

    def evaluate(self) -> float:
        """Mean PSNR over the training views (the Figure 9 metric)."""
        model = self.engine.snapshot_model()
        renderer, _ = self.engine_config.resolve_renderer()
        values = []
        for cam in self.scene.cameras:
            img = renderer(cam, model, self.engine_config.raster).image
            values.append(psnr(img, self.targets[cam.view_id]))
        return float(np.mean(values))

    # ------------------------------------------------------------------
    def _apply_schedules(self, step: int) -> None:
        """Per-batch schedule updates (shared AdamConfig / RasterSettings
        objects, so all engine internals observe the change)."""
        cfg = self.config
        if cfg.position_lr_decay is not None:
            self.engine_config.adam.lr_overrides["positions"] = (
                cfg.position_lr_decay.value(step)
            )
        if cfg.sh_warmup is not None:
            self.engine_config.raster.active_sh_degree = (
                cfg.sh_warmup.degree(step)
            )

    def train(
        self,
        num_batches: Optional[int] = None,
        start_step: int = 0,
    ) -> TrainingHistory:
        """Run ``num_batches`` batches (default: the config value).

        ``start_step`` offsets the global step counter so resumed /
        incremental runs (the ``TrainingSession`` facade) keep schedules,
        densification windows, and opacity resets on the same absolute
        timeline as one uninterrupted run.  Recorded ``eval_batches`` are
        absolute steps.  Neither argument mutates ``self.config``.
        """
        history = TrainingHistory()
        cfg = self.config
        total = cfg.num_batches if num_batches is None else num_batches
        last_step = start_step + total
        for step in range(start_step + 1, last_step + 1):
            self._apply_schedules(step - 1)
            batch = self._next_batch()
            result = self.engine.train_batch(
                batch, self.targets, position_grad_hook=self._record_grads
            )
            history.losses.append(result.loss)
            history.gaussian_counts.append(self.engine.num_gaussians)
            # Unified BatchResult: non-offload engines report zero bytes.
            history.loaded_bytes += result.loaded_bytes
            history.stored_bytes += result.stored_bytes
            history.wall_time_s += result.wall_time_s

            if (
                cfg.densify_every
                and cfg.densify_start <= step <= cfg.densify_stop
                and step % cfg.densify_every == 0
            ):
                self._densify()

            if cfg.opacity_reset_every and step % cfg.opacity_reset_every == 0:
                self._reset_opacity()

            if cfg.eval_every and step % cfg.eval_every == 0:
                history.psnrs.append(self.evaluate())
                history.eval_batches.append(step)
        if not history.eval_batches or history.eval_batches[-1] != last_step:
            history.psnrs.append(self.evaluate())
            history.eval_batches.append(last_step)
        return history

    def _record_grads(self, view_id, working_set, position_grads) -> None:
        self.densify_state.record(np.asarray(position_grads), working_set)

    def _reset_opacity(self) -> None:
        """Clamp opacities down in place across whichever stores the engine
        uses (a structure-preserving edit: optimizer state is kept)."""
        from repro.gaussians.densify import reset_opacity

        model = self.engine.snapshot_model()
        reset_opacity(model, ceiling=self.config.opacity_reset_ceiling)
        origins = np.arange(model.num_gaussians)
        self.engine.rebuild(model, origins)

    def _densify(self) -> None:
        model = self.engine.snapshot_model()
        new_model, stats, origins = densify_and_prune(
            model, self.densify_state, self.densify_config, seed=self._rng
        )
        if stats.after == stats.before and stats.cloned == stats.split == 0:
            self.densify_state = DensificationState(stats.after)
            return
        self.engine.rebuild(new_model, origins)
        self.densify_state = DensificationState(new_model.num_gaussians)
