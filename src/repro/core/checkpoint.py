"""Checkpointing: save/resume training across processes.

Long offloaded runs (the paper trains BigCity for 500k steps) need durable
state: the Gaussian parameters plus *both* optimizers' moments and per-row
step counts — without them, resuming silently restarts bias correction and
perturbs training.  The format is a single ``.npz`` (portable, no pickle).

Works with any engine type; CLM's split stores are reassembled through
``snapshot_model`` and re-split on load.
"""

from __future__ import annotations

import json
from typing import Dict

import numpy as np

from repro.gaussians.model import GaussianModel

FORMAT_VERSION = 1


def _optimizer_arrays(prefix: str, opt) -> Dict[str, np.ndarray]:
    # The per-name serialization works for both optimizer layouts: the
    # packed-row PackedSparseAdam exposes its moments as per-name views,
    # so checkpoints stay interchangeable across optimizer generations.
    out = {}
    for name, arr in opt.m.items():
        out[f"{prefix}.m.{name}"] = arr
    for name, arr in opt.v.items():
        out[f"{prefix}.v.{name}"] = arr
    out[f"{prefix}.steps"] = opt.steps
    return out


def _load_optimizer(prefix: str, opt, data) -> None:
    if hasattr(opt, "packed_m"):  # PackedSparseAdam: write through the views
        for name, view in opt.m.items():
            view[:] = data[f"{prefix}.m.{name}"]
        for name, view in opt.v.items():
            view[:] = data[f"{prefix}.v.{name}"]
        opt.steps[:] = data[f"{prefix}.steps"]
        return
    for name in opt.m:
        opt.m[name] = data[f"{prefix}.m.{name}"]
        opt.v[name] = data[f"{prefix}.v.{name}"]
    opt.steps = data[f"{prefix}.steps"]


def save_checkpoint(path: str, engine, batches_trained: int = 0) -> None:
    """Serialize an engine's model + optimizer state to ``path`` (.npz)."""
    model = engine.snapshot_model()
    arrays: Dict[str, np.ndarray] = {
        f"model.{k}": v for k, v in model.parameters().items()
    }
    meta = {
        "version": FORMAT_VERSION,
        "sh_degree": model.sh_degree,
        "num_gaussians": model.num_gaussians,
        "engine": type(engine).__name__,
        "batches_trained": batches_trained,
    }
    if hasattr(engine, "adam_critical"):  # CLMEngine
        arrays.update(_optimizer_arrays("adam_critical", engine.adam_critical))
        arrays.update(
            _optimizer_arrays("adam_noncritical", engine.adam_noncritical)
        )
    else:  # GPU-only / naive engines share a single optimizer
        arrays.update(_optimizer_arrays("optimizer", engine.optimizer))
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_model(path: str) -> "tuple[GaussianModel, dict]":
    """Read back the model (and metadata) from a checkpoint."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta["version"] != FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {meta['version']}")
        model = GaussianModel(
            positions=data["model.positions"],
            log_scales=data["model.log_scales"],
            quaternions=data["model.quaternions"],
            sh=data["model.sh"],
            opacity_logits=data["model.opacity_logits"],
            sh_degree=meta["sh_degree"],
        )
    return model, meta


def restore_into_engine(path: str, engine) -> dict:
    """Load a checkpoint into an existing engine of matching shape.

    The engine must have been constructed from a model with the same
    Gaussian count/degree (typically via ``load_model`` + the engine
    constructor); this routine then overwrites parameters and optimizer
    state in place so training resumes bit-exactly.
    """
    model, meta = load_model(path)
    if model.num_gaussians != engine.num_gaussians:
        raise ValueError(
            f"checkpoint has {model.num_gaussians} Gaussians, engine has "
            f"{engine.num_gaussians}"
        )
    with np.load(path) as data:
        if hasattr(engine, "adam_critical"):
            engine.gpu_store.positions[:] = model.positions
            engine.gpu_store.log_scales[:] = model.log_scales
            engine.gpu_store.quaternions[:] = model.quaternions
            engine.cpu_store.write_params(
                np.arange(model.num_gaussians),
                {"sh": model.sh, "opacity_logits": model.opacity_logits},
            )
            _load_optimizer("adam_critical", engine.adam_critical, data)
            _load_optimizer("adam_noncritical", engine.adam_noncritical, data)
        else:
            target = engine.cpu_model if hasattr(engine, "cpu_model") else engine.model
            for name, arr in target.parameters().items():
                arr[:] = model.parameters()[name]
            _load_optimizer("optimizer", engine.optimizer, data)
    return meta
