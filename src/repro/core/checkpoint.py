"""Checkpointing: save/resume training across processes.

Long offloaded runs (the paper trains BigCity for 500k steps) need durable
state: the Gaussian parameters plus *both* optimizers' moments and per-row
step counts — without them, resuming silently restarts bias correction and
perturbs training.  The format is a single ``.npz`` (portable, no pickle).

Works with any engine type; CLM's split stores are reassembled through
``snapshot_model`` and re-split on load.

Hardening (the robustness PR):

- **atomic writes** — every save lands in a same-directory temp file and
  is published with ``os.replace``, so a crash mid-write never leaves a
  half-written checkpoint under the real name;
- **content checksums** — the metadata carries a BLAKE2b digest per
  array, verified on load, so silent corruption (bit rot, torn copies)
  is *detected* instead of silently resuming from garbage;
- **clear errors** — every load failure (truncated zip, garbage bytes,
  missing arrays, checksum mismatch, bad metadata) surfaces as a
  :class:`CheckpointError` naming the path (and generation, when known),
  never a raw exception from deep inside numpy;
- **retained generations** — :class:`CheckpointManager` writes numbered
  generations (``ckpt-000042.npz``), keeps the most recent ``keep``, and
  ``load_latest_good``/``restore_latest_good`` fall back to the newest
  generation that still verifies instead of crashing on a corrupt tip.

Version-1 checkpoints (pre-checksum, same per-name array layout) still
load — the checksum pass simply skips when the metadata has none.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gaussians.model import GaussianModel

#: Version 2 adds per-array checksums + generation metadata; version 1
#: (no checksums) remains loadable.
FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


class CheckpointError(ValueError):
    """A checkpoint could not be read, parsed, or verified.

    Carries the offending :attr:`path` and (when the caller knows it) the
    :attr:`generation`, and names both in the message — the one exception
    type every load/restore failure funnels through.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        generation: Optional[int] = None,
    ) -> None:
        self.path = path
        self.generation = generation
        detail = []
        if path is not None:
            detail.append(f"path={path!r}")
        if generation is not None:
            detail.append(f"generation={generation}")
        if detail:
            message = f"{message} ({', '.join(detail)})"
        super().__init__(message)


def _checksum(arr: np.ndarray) -> str:
    """BLAKE2b content digest of one array's raw bytes."""
    return hashlib.blake2b(
        np.ascontiguousarray(arr).tobytes(), digest_size=16
    ).hexdigest()


def _optimizer_arrays(prefix: str, opt) -> Dict[str, np.ndarray]:
    # The per-name serialization works for both optimizer layouts: the
    # packed-row PackedSparseAdam exposes its moments as per-name views,
    # so checkpoints stay interchangeable across optimizer generations.
    out = {}
    for name, arr in opt.m.items():
        out[f"{prefix}.m.{name}"] = arr
    for name, arr in opt.v.items():
        out[f"{prefix}.v.{name}"] = arr
    out[f"{prefix}.steps"] = opt.steps
    return out


def _load_optimizer(prefix: str, opt, data) -> None:
    if hasattr(opt, "packed_m"):  # PackedSparseAdam: write through the views
        for name, view in opt.m.items():
            view[:] = data[f"{prefix}.m.{name}"]
        for name, view in opt.v.items():
            view[:] = data[f"{prefix}.v.{name}"]
        opt.steps[:] = data[f"{prefix}.steps"]
        return
    for name in opt.m:
        opt.m[name] = data[f"{prefix}.m.{name}"]
        opt.v[name] = data[f"{prefix}.v.{name}"]
    opt.steps = data[f"{prefix}.steps"]


def save_checkpoint(
    path: str,
    engine,
    batches_trained: int = 0,
    generation: Optional[int] = None,
) -> None:
    """Serialize an engine's model + optimizer state to ``path`` (.npz).

    The write is atomic: arrays land in ``path + '.tmp'`` and are
    published with ``os.replace``, so concurrent readers (and crashes)
    only ever see the previous complete checkpoint or the new one.
    """
    model = engine.snapshot_model()
    arrays: Dict[str, np.ndarray] = {
        f"model.{k}": v for k, v in model.parameters().items()
    }
    if hasattr(engine, "adam_critical"):  # CLMEngine
        arrays.update(_optimizer_arrays("adam_critical", engine.adam_critical))
        arrays.update(
            _optimizer_arrays("adam_noncritical", engine.adam_noncritical)
        )
    else:  # GPU-only / naive engines share a single optimizer
        arrays.update(_optimizer_arrays("optimizer", engine.optimizer))
    meta = {
        "version": FORMAT_VERSION,
        "sh_degree": model.sh_degree,
        "num_gaussians": model.num_gaussians,
        "engine": type(engine).__name__,
        "batches_trained": batches_trained,
        "generation": generation,
        "checksums": {name: _checksum(arr) for name, arr in arrays.items()},
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    tmp = f"{path}.tmp"
    try:
        # Write through an open handle: np.savez would otherwise append
        # ``.npz`` to the temp name and the rename would miss it.
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def read_checkpoint(
    path: str, generation: Optional[int] = None
) -> "tuple[Dict[str, np.ndarray], dict]":
    """Read ``path`` fully into memory and verify it.

    Returns ``(arrays, meta)``.  Every failure mode — unreadable file,
    truncated/garbage zip, missing or corrupt metadata, unsupported
    version, checksum mismatch — raises :class:`CheckpointError` naming
    the path and generation.
    """
    try:
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
    except Exception as exc:
        raise CheckpointError(
            f"unreadable checkpoint: {exc}", path=path, generation=generation
        ) from exc
    if "meta" not in arrays:
        raise CheckpointError(
            "checkpoint has no metadata record",
            path=path,
            generation=generation,
        )
    try:
        meta = json.loads(bytes(arrays.pop("meta")).decode("utf-8"))
    except Exception as exc:
        raise CheckpointError(
            f"corrupt checkpoint metadata: {exc}",
            path=path,
            generation=generation,
        ) from exc
    version = meta.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r}",
            path=path,
            generation=generation,
        )
    checksums = meta.get("checksums")
    if checksums:  # absent in version-1 checkpoints
        for name, expected in checksums.items():
            if name not in arrays:
                raise CheckpointError(
                    f"checkpoint array '{name}' is missing",
                    path=path,
                    generation=generation,
                )
            actual = _checksum(arrays[name])
            if actual != expected:
                raise CheckpointError(
                    f"checksum mismatch for array '{name}' "
                    f"(expected {expected}, got {actual})",
                    path=path,
                    generation=generation,
                )
    return arrays, meta


def _model_from_arrays(
    arrays: Dict[str, np.ndarray],
    meta: dict,
    path: str,
    generation: Optional[int],
) -> GaussianModel:
    try:
        return GaussianModel(
            positions=arrays["model.positions"],
            log_scales=arrays["model.log_scales"],
            quaternions=arrays["model.quaternions"],
            sh=arrays["model.sh"],
            opacity_logits=arrays["model.opacity_logits"],
            sh_degree=meta["sh_degree"],
        )
    except KeyError as exc:
        raise CheckpointError(
            f"checkpoint is missing model array {exc}",
            path=path,
            generation=generation,
        ) from exc


def load_model(
    path: str, generation: Optional[int] = None
) -> "tuple[GaussianModel, dict]":
    """Read back the model (and metadata) from a checkpoint."""
    arrays, meta = read_checkpoint(path, generation=generation)
    return _model_from_arrays(arrays, meta, path, generation), meta


def restore_into_engine(
    path: str, engine, generation: Optional[int] = None
) -> dict:
    """Load a checkpoint into an existing engine of matching shape.

    The engine must have been constructed from a model with the same
    Gaussian count/degree (typically via ``load_model`` + the engine
    constructor); this routine then overwrites parameters and optimizer
    state in place so training resumes bit-exactly.
    """
    arrays, meta = read_checkpoint(path, generation=generation)
    model = _model_from_arrays(arrays, meta, path, generation)
    if model.num_gaussians != engine.num_gaussians:
        raise CheckpointError(
            f"checkpoint has {model.num_gaussians} Gaussians, engine has "
            f"{engine.num_gaussians}",
            path=path,
            generation=generation,
        )
    try:
        if hasattr(engine, "adam_critical"):
            engine.gpu_store.positions[:] = model.positions
            engine.gpu_store.log_scales[:] = model.log_scales
            engine.gpu_store.quaternions[:] = model.quaternions
            engine.cpu_store.write_params(
                np.arange(model.num_gaussians),
                {"sh": model.sh, "opacity_logits": model.opacity_logits},
            )
            _load_optimizer("adam_critical", engine.adam_critical, arrays)
            _load_optimizer("adam_noncritical", engine.adam_noncritical, arrays)
        else:
            target = (
                engine.cpu_model
                if hasattr(engine, "cpu_model")
                else engine.model
            )
            for name, arr in target.parameters().items():
                arr[:] = model.parameters()[name]
            _load_optimizer("optimizer", engine.optimizer, arrays)
    except KeyError as exc:
        raise CheckpointError(
            f"checkpoint is missing optimizer array {exc}",
            path=path,
            generation=generation,
        ) from exc
    return meta


class CheckpointManager:
    """Numbered checkpoint generations with last-good fallback.

    ``save()`` writes ``ckpt-<generation>.npz`` atomically, verifies the
    published file end-to-end (read + checksum pass), then prunes old
    generations beyond ``keep``.  ``load_latest_good()`` /
    ``restore_latest_good()`` walk generations newest-first and return
    the first one that verifies, warning about (and skipping) corrupt
    tips — recovery degrades to older state instead of crashing.
    """

    _NAME_RE = re.compile(r"^ckpt-(\d{6})\.npz$")

    def __init__(self, directory: str, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = directory
        self.keep = int(keep)
        os.makedirs(directory, exist_ok=True)

    def path_for(self, generation: int) -> str:
        return os.path.join(self.directory, f"ckpt-{generation:06d}.npz")

    def generations(self) -> List[int]:
        """Present generation numbers, ascending."""
        out = []
        for name in os.listdir(self.directory):
            match = self._NAME_RE.match(name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    # ------------------------------------------------------------------
    def save(self, engine, batches_trained: int = 0) -> str:
        """Write the next generation; returns its path."""
        present = self.generations()
        generation = (present[-1] + 1) if present else 0
        path = self.path_for(generation)
        save_checkpoint(
            path, engine, batches_trained=batches_trained,
            generation=generation,
        )
        # Self-check before pruning: never delete a good old generation
        # on the strength of an unverified new one.
        read_checkpoint(path, generation=generation)
        for old in self.generations()[: -self.keep]:
            os.unlink(self.path_for(old))
        return path

    def _latest_good(self, loader):
        """Apply ``loader(path, generation)`` newest-first, returning the
        first success and warning about (then skipping) generations that
        fail with :class:`CheckpointError`."""
        generations = self.generations()
        if not generations:
            raise CheckpointError(
                "no checkpoint generations found", path=self.directory
            )
        last_error: Optional[CheckpointError] = None
        for generation in reversed(generations):
            path = self.path_for(generation)
            try:
                return loader(path, generation)
            except CheckpointError as exc:
                warnings.warn(
                    f"checkpoint generation {generation} failed to load "
                    f"({exc}); falling back to the previous generation",
                    RuntimeWarning,
                    stacklevel=3,
                )
                last_error = exc
        raise CheckpointError(
            f"no loadable checkpoint generation "
            f"(tried {len(generations)}, last error: {last_error})",
            path=self.directory,
        )

    def load_latest_good(self) -> "tuple[GaussianModel, dict, str]":
        """The newest verifiable generation as ``(model, meta, path)``."""

        def loader(path: str, generation: int):
            model, meta = load_model(path, generation=generation)
            return model, meta, path

        return self._latest_good(loader)

    def restore_latest_good(self, engine) -> dict:
        """Restore the newest verifiable generation into ``engine``."""
        return self._latest_good(
            lambda path, generation: restore_into_engine(
                path, engine, generation=generation
            )
        )
