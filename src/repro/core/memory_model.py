"""GPU and pinned-host memory accounting for the four systems (§6.2).

Reproduces the memory-side experiments: maximum trainable model size before
OOM (Figure 8), GPU memory breakdowns (Figure 10) and pinned memory usage
(Table 6).

Per-Gaussian GPU footprints:

===========  =========================================================
system       bytes per Gaussian on the GPU
===========  =========================================================
baseline     59 params x 4 copies x 4 B = 944 (params/grads/2 moments)
             + full-N activations (fused kernels touch every Gaussian)
enhanced     944 + activations only for in-frustum Gaussians (§5.1)
naive        59 x 2 x 4 = 472 (params + grads; optimizer lives on CPU)
             + in-frustum activations
clm          10 x 4 x 4 = 160 (critical attrs with GPU-side optimizer)
             + double buffers 2 x (49 param + 49 grad floats) x 4 B per
               *in-frustum* Gaussian (§5.3)
             + in-frustum activations
===========  =========================================================

Activation constants are calibrated against the OOM boundaries of Figure 8
and the breakdowns of Figure 10 (DESIGN.md §2); what matters downstream is
that they are *shared* across systems, so ratios (CLM trains ~6x larger
than the enhanced baseline, ~2.2x larger than naive) are structural.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import attributes
from repro.hardware.specs import Testbed

SYSTEMS = ("baseline", "enhanced", "naive", "clm")

BYTES_PER_FLOAT = 4
TRAIN_COPIES = 4  # param + grad + two Adam moments

#: Full model state per Gaussian when everything lives on the GPU.
MODEL_STATE_FULL_BPG = attributes.total_floats() * TRAIN_COPIES * BYTES_PER_FLOAT
#: Naive offloading keeps params + grads on GPU, optimizer on CPU.
NAIVE_MODEL_BPG = attributes.total_floats() * 2 * BYTES_PER_FLOAT
#: CLM keeps the 10 critical floats resident with their optimizer state.
CLM_CRITICAL_BPG = attributes.critical_floats() * TRAIN_COPIES * BYTES_PER_FLOAT
#: CLM double buffers: two in-flight microbatch buffers of non-critical
#: params + their gradients (§5.3).
CLM_BUFFER_BPG = 2 * 2 * attributes.noncritical_floats() * BYTES_PER_FLOAT

#: Overlapped execution and pool accounting: the overlap runtime
#: (:mod:`repro.runtime`) changes *when* the finalized-chunk CPU Adam
#: runs, never *where* state lives — the worker threads update pinned CPU
#: rows and CPU-resident moments in place, so no model byte above moves
#: and no extra GPU allocation appears (the double buffer stays two
#: microbatches deep regardless of ``overlap_workers``; the executor's
#: staging queue holds row-index arrays, not parameter copies).  What
#: overlap *does* change is unaccounted here by design: transient CPU-side
#: kernel temporaries of one in-flight chunk per worker (a few chunk-sized
#: rows), which belong to host RAM the pool model never budgeted.
#: Figure 8/10 numbers are therefore identical under any worker count.

#: Per-Gaussian activation state of the rasterizer (projected means,
#: conics, colours, tile keys, and their saved gradients).  Like the
#: paper's CUDA kernels, this assumes the backward pass *recomputes* the
#: per-tile blending state; the functional substrate's optional blend
#: cache (``RasterSettings.cache_blend_state``) retains extra bytes that
#: are deliberately outside this analytic allowance — they are reported by
#: ``RenderContext.activation_bytes``/``blend_state_bytes`` instead, and
#: every engine opts out of retention (``EngineBase.raster_settings``)
#: whenever a GPU memory pool enforces this model's budget.
ACT_PER_GAUSSIAN = 500
#: Per-pixel activation state (composited colour, transmittance, per-pixel
#: gradient staging).
ACT_PER_PIXEL = 240

#: Recovery note: elastic recovery snapshots
#: (``EngineConfig(recovery_snapshot_every=...)``, used by
#: ``clm_sharded`` to re-shard onto survivors after a fail-stop) are
#: transient *host-side* copies of model parameters, optimizer moments,
#: and RNG state.  They live outside the simulated GPU memory pool and
#: outside the pinned-store budget of Table 6, exist only between the
#: snapshot batch and the next overwrite, and restoring one re-populates
#: the survivors' shards through the same accounted paths as a cold
#: start — so taking or restoring a snapshot never double-counts pool
#: bytes, and Figure 8/10 numbers are identical with recovery on or off.

#: Serving note: forward-only render serving (:mod:`repro.serving`) sits
#: entirely outside the training budgets above.  The serving path forces
#: ``cache_blend_state=False`` (``EngineBase.serving_raster_settings``) so
#: no per-tile blending state is retained, and it never materializes
#: gradient buffers, Adam moments, or the CLM double buffers — a served
#: model costs one read-only parameter copy plus transient per-request
#: activations for the (frustum ∩ LOD) working set.

#: Sharding note: the ``clm_sharded`` engine (:mod:`repro.sharding`)
#: divides the budgets above by owned rows, not evenly.  Each of the K
#: devices holds ``CLM_CRITICAL_BPG`` for its *owned* shard (spatial
#: median cut → within ~±1 row of N/K) plus the same two-microbatch
#: double buffer, and the host pins only owned non-critical rows + CPU
#: moments per shard, so the K-device pool totals equal the single-device
#: figures — sharding spreads the model, it does not replicate it.  The
#: one overhead the single-device model lacks is the **halo**: boundary
#: Gaussians a device reads but does not own are fetched per batch
#: (critical params in, gradients back — ``ShardedBatchPlan.halo_bytes``
#: counts both directions) and discarded afterwards, costing transient
#: per-batch buffer space proportional to the shard boundary surface,
#: never resident bytes.  Owners alone step Adam on halo rows, so moments
#: are never duplicated across devices.

#: Kernel-backend note: the compiled kernel backends (:mod:`repro.kernels`)
#: change *timing and scratch allocation*, never pool accounting.  A JIT
#: backend fuses the slab compositing and Adam passes — fewer memory
#: passes, per-tile scratch and per-CSR-entry gradient staging allocated
#: transiently inside one kernel call — and, like the paper's CUDA
#: kernels, *recomputes* blend state backward instead of retaining it
#: (``retains_blend_state = False``), so its activation footprint matches
#: the analytic allowance above exactly (no ``blend_state_bytes``).  Every
#: byte this model budgets — parameters, gradients, moments, double
#: buffers — is identical under any backend; switching backends moves
#: wall-clock time, not Figure 8/10 numbers.

#: Auto-tuning note: the adaptive runtime (:mod:`repro.autotune` +
#: ``repro.runtime.GraphExecutor``) changes *timing only*, never pool
#: accounting.  Every knob the tuner turns is an execution detail of the
#: same plans this model already budgets: ``overlap_workers`` moves Adam
#: chunks between threads (worker pools hold row-*index* arrays, not
#: parameter copies), ``group_size`` changes slab blocking inside the
#: fixed per-slab scratch allowance, ordering permutes which microbatch
#: occupies the same two-slot double buffer, and backend choice defers to
#: the kernel-backend note above.  Cost-model calibration state is a few
#: dozen scalar rates.  Auto-tuned runs therefore report bit-identical
#: pool budgets — the tuner optimizes the schedule through the
#: :mod:`repro.hardware` simulator, not the memory plan.


@dataclass(frozen=True)
class SceneMemoryProfile:
    """Scene statistics the memory model needs.

    ``rho_max`` bounds the in-frustum working set (buffers and activations
    must be sized for the worst view); ``pixels`` is the paper-scale
    training resolution.
    """

    pixels: int
    rho_max: float
    rho_mean: float = 0.0
    name: str = ""


def profile_from_scene(scene, culling_index=None) -> SceneMemoryProfile:
    """Measure a profile from a built synthetic scene.

    ``culling_index`` may be passed to reuse an existing index; otherwise
    the scene's cameras are culled here.
    """
    from repro.core.culling_index import CullingIndex

    index = culling_index or CullingIndex.build(scene.model, scene.cameras)
    rhos = index.sparsities()
    return SceneMemoryProfile(
        pixels=scene.spec.paper_pixels,
        rho_max=float(rhos.max()) if rhos.size else 0.0,
        rho_mean=float(rhos.mean()) if rhos.size else 0.0,
        name=scene.name,
    )


def gpu_memory_bytes(
    system: str, num_gaussians: float, profile: SceneMemoryProfile
) -> Dict[str, float]:
    """GPU footprint split into ``model_states`` and ``others`` (Figure 10).

    ``others`` covers activations, CLM's double buffers and index buffers —
    matching the paper's two-part bars.
    """
    n = float(num_gaussians)
    in_frustum = profile.rho_max * n
    pixel_act = ACT_PER_PIXEL * profile.pixels

    if system == "baseline":
        model = MODEL_STATE_FULL_BPG * n
        others = ACT_PER_GAUSSIAN * n + pixel_act
    elif system == "enhanced":
        model = MODEL_STATE_FULL_BPG * n
        others = ACT_PER_GAUSSIAN * in_frustum + pixel_act
    elif system == "naive":
        model = NAIVE_MODEL_BPG * n
        others = ACT_PER_GAUSSIAN * in_frustum + pixel_act
    elif system == "clm":
        model = CLM_CRITICAL_BPG * n
        others = (
            CLM_BUFFER_BPG * in_frustum
            + ACT_PER_GAUSSIAN * in_frustum
            + pixel_act
        )
    else:
        raise ValueError(f"unknown system '{system}'; choose from {SYSTEMS}")
    return {"model_states": model, "others": others, "total": model + others}


def peak_gpu_bytes(
    system: str, num_gaussians: float, profile: SceneMemoryProfile
) -> float:
    return gpu_memory_bytes(system, num_gaussians, profile)["total"]


def fits(
    system: str,
    num_gaussians: float,
    profile: SceneMemoryProfile,
    testbed: Testbed,
) -> bool:
    avail = testbed.gpu.vram_bytes - testbed.gpu.reserved_bytes
    return peak_gpu_bytes(system, num_gaussians, profile) <= avail


def max_model_size(
    system: str,
    testbed: Testbed,
    profile: SceneMemoryProfile,
    upper: float = 1e10,
) -> float:
    """Largest N (Gaussians) trainable without OOM (Figure 8).

    Binary search over :func:`peak_gpu_bytes`; returns 0 when even a tiny
    model does not fit (e.g. 4K activations on an 11 GB card would still
    fit, but the guard exists for robustness).
    """
    if not fits(system, 1.0, profile, testbed):
        return 0.0
    if fits(system, upper, profile, testbed):
        return upper
    lo, hi = 1.0, upper
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if fits(system, mid, profile, testbed):
            lo = mid
        else:
            hi = mid
    return lo


def memory_breakdown(
    system: str, num_gaussians: float, profile: SceneMemoryProfile, testbed: Testbed
) -> Optional[Dict[str, float]]:
    """Figure 10 bar (GB): breakdown, or None when the system OOMs."""
    if not fits(system, num_gaussians, profile, testbed):
        return None
    parts = gpu_memory_bytes(system, num_gaussians, profile)
    return {k: v / 1e9 for k, v in parts.items()}


def pinned_memory_bytes(system: str, num_gaussians: float) -> float:
    """Pinned host memory (Table 6).

    Only tensors the GPU DMAs into are pinned: parameters and gradients.
    Optimizer moments stay in regular (unpinned) RAM (§6.4).  CLM pins the
    49 offloaded floats (+ gradient buffer); naive pins all 59 of each.
    Padding bytes (§5.2's cache-line alignment) are excluded, matching the
    paper's reported tensor sizes.
    """
    n = float(num_gaussians)
    if system == "clm":
        per = 2 * attributes.noncritical_floats() * BYTES_PER_FLOAT
    elif system == "naive":
        per = 2 * attributes.total_floats() * BYTES_PER_FLOAT
    elif system in ("baseline", "enhanced"):
        per = 0.0
    else:
        raise ValueError(f"unknown system '{system}'")
    return per * n


def host_memory_bytes(system: str, num_gaussians: float) -> float:
    """Total CPU RAM: pinned tensors plus unpinned optimizer state."""
    n = float(num_gaussians)
    pinned = pinned_memory_bytes(system, n)
    if system == "clm":
        moments = 2 * attributes.noncritical_floats() * BYTES_PER_FLOAT * n
    elif system == "naive":
        moments = 2 * attributes.total_floats() * BYTES_PER_FLOAT * n
    else:
        moments = 0.0
    return pinned + moments
