"""The CLM engine: functional offloaded training (paper §4, Figure 6).

One :meth:`CLMEngine.train_batch` call executes the full CLM step on real
NumPy arrays:

1. frustum-cull every view of the batch against the GPU-resident critical
   attributes (§4.1, §5.1);
2. order the microbatches (TSP by default, §4.2.3);
3. build the precise-caching transfer plan (§4.2.1) and the overlapped-Adam
   finalization chunks (§4.2.2);
4. run the microbatch loop: assemble the working set (cache copies +
   pinned-store loads), render, compute loss, backprop, accumulate
   gradients (GPU-resident for critical attributes, working-buffer for
   non-critical with carried accumulation), offload finalized gradients,
   and apply the eager CPU-Adam chunk;
5. finish the batch: last Adam chunk, then the GPU-side Adam update of the
   critical attributes.

Because the optimizer is per-row sparse Adam, the result is equivalent to
GPU-only training of the same batch — the equivalence tests in
``tests/core/test_equivalence.py`` check parameters bit-for-near-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import adam_overlap, attributes, orders
from repro.core.caching import MicrobatchStep, build_transfer_plan
from repro.core.config import EngineConfig
from repro.core.culling_index import CullingIndex
from repro.core.stores import (
    GpuCriticalStore,
    GpuWorkingSet,
    PinnedParameterStore,
    TransferCounters,
)
from repro.gaussians.camera import Camera
from repro.gaussians.loss import photometric_loss, psnr
from repro.gaussians.model import GaussianModel
from repro.gaussians.render import render, render_backward
from repro.hardware.memory import MemoryPool
from repro.optim.sparse_adam import SparseAdam
from repro.utils.rng import make_rng

CRITICAL = ("positions", "log_scales", "quaternions")
NONCRITICAL = ("sh", "opacity_logits")


@dataclass
class BatchResult:
    """Metrics of one CLM training batch."""

    loss: float
    per_view_loss: Dict[int, float]
    order: List[int]
    loaded_gaussians: int
    stored_gaussians: int
    cached_gaussians: int
    touched_gaussians: int
    adam_chunk_sizes: List[int]

    @property
    def loaded_bytes(self) -> float:
        return attributes.noncritical_bytes(self.loaded_gaussians)

    @property
    def stored_bytes(self) -> float:
        return attributes.noncritical_bytes(self.stored_gaussians)


class CLMEngine:
    """Offloaded 3DGS training over split parameter stores."""

    def __init__(
        self,
        model: GaussianModel,
        cameras: Sequence[Camera],
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.cameras: Dict[int, Camera] = {c.view_id: c for c in cameras}
        self.pool: Optional[MemoryPool] = None
        if self.config.gpu_capacity_bytes is not None:
            self.pool = MemoryPool(self.config.gpu_capacity_bytes, name="gpu")
        self.gpu_store = GpuCriticalStore(model, pool=self.pool)
        self.cpu_store = PinnedParameterStore(model)
        self.sh_degree = model.sh_degree
        self._num_pixels = max(
            (c.num_pixels for c in self.cameras.values()), default=0
        )
        self.adam_critical = SparseAdam(
            self.gpu_store.params(), config=self.config.adam
        )
        self.adam_noncritical = SparseAdam(
            {
                "sh": model.sh,
                "opacity_logits": model.opacity_logits,
            },
            config=self.config.adam,
        )
        self._rng = make_rng(self.config.seed)
        self._render, self._render_backward = self.config.resolve_renderer()
        self.batches_trained = 0

    # ------------------------------------------------------------------
    @property
    def num_gaussians(self) -> int:
        return self.gpu_store.num_rows

    def snapshot_model(self) -> GaussianModel:
        """Reassemble the full model from both stores (for eval/densify)."""
        nc = self.cpu_store.gather_params(np.arange(self.num_gaussians))
        return GaussianModel(
            positions=self.gpu_store.positions.copy(),
            log_scales=self.gpu_store.log_scales.copy(),
            quaternions=self.gpu_store.quaternions.copy(),
            sh=nc["sh"],
            opacity_logits=nc["opacity_logits"],
            sh_degree=self.sh_degree,
        )

    def cull_views(self, view_ids: Sequence[int]) -> List[np.ndarray]:
        """Pre-rendering frustum culling using critical attributes only."""
        from repro.gaussians.frustum import cull_gaussians

        sets = []
        for vid in view_ids:
            cam = self.cameras[vid]
            sets.append(
                cull_gaussians(
                    cam,
                    self.gpu_store.positions,
                    self.gpu_store.log_scales,
                    self.gpu_store.quaternions,
                )
            )
        return sets

    # ------------------------------------------------------------------
    def train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook=None,
    ) -> BatchResult:
        """One full CLM training step over ``view_ids``.

        ``targets`` maps view id -> ground-truth image.
        ``position_grad_hook(view_id, working_set, position_grads)`` lets
        the trainer collect densification statistics without the engine
        knowing about them.
        """
        cfg = self.config
        batch = len(view_ids)
        raw_sets = self.cull_views(view_ids)
        cams = [self.cameras[v] for v in view_ids]
        order = orders.order_microbatches(
            cfg.ordering, raw_sets, cams, seed=self._rng
        )
        ordered_sets = [raw_sets[k] for k in order]
        ordered_views = [view_ids[k] for k in order]
        steps = build_transfer_plan(
            ordered_sets, ordered_views, enable_cache=cfg.enable_cache
        )
        chunks = adam_overlap.adam_chunks(ordered_sets, self.num_gaussians)
        touched = adam_overlap.touched_union(ordered_sets)
        self.cpu_store.zero_grads(touched)
        self.gpu_store.zero_grads(touched)

        working = GpuWorkingSet(
            self.cpu_store,
            self.gpu_store,
            pool=self.pool,
            num_pixels=self._num_pixels,
        )
        carried = None
        total_loss = 0.0
        per_view_loss: Dict[int, float] = {}

        for step, chunk in zip(steps, chunks):
            model_i = working.assemble(
                step.working_set, step.loads, step.cached, carried
            )
            cam = self.cameras[step.view_id]
            result = self._render(cam, model_i, cfg.raster)
            loss, g_img = photometric_loss(
                result.image, targets[step.view_id], cfg.ssim_lambda
            )
            per_view_loss[step.view_id] = loss
            total_loss += loss / batch
            grads = self._render_backward(result, model_i, g_img / batch)
            working.add_grads(grads)
            if position_grad_hook is not None:
                position_grad_hook(
                    step.view_id, step.working_set, grads["positions"]
                )
            carried = working.retire(step.stores, step.carried)
            if cfg.enable_overlap_adam:
                self._apply_noncritical_adam(chunk)

        if not cfg.enable_overlap_adam:
            for chunk in chunks:
                self._apply_noncritical_adam(chunk)
        self._apply_critical_adam(touched)
        working.release()
        self.batches_trained += 1

        return BatchResult(
            loss=total_loss,
            per_view_loss=per_view_loss,
            order=list(order),
            loaded_gaussians=working.counters.loaded_gaussians,
            stored_gaussians=working.counters.stored_gaussians,
            cached_gaussians=working.counters.cached_gaussians,
            touched_gaussians=int(touched.size),
            adam_chunk_sizes=[int(c.size) for c in chunks],
        )

    # ------------------------------------------------------------------
    def _apply_noncritical_adam(self, rows: np.ndarray) -> None:
        """CPU Adam over one finalized chunk (the §5.4 thread's work)."""
        if rows.size == 0:
            return
        params = self.cpu_store.gather_params(rows)
        grads = self.cpu_store.gather_grads(rows)
        self.adam_noncritical.step_gathered(params, grads, rows)
        self.cpu_store.write_params(rows, params)

    def _apply_critical_adam(self, rows: np.ndarray) -> None:
        """GPU-side Adam over the resident critical attributes."""
        if rows.size == 0:
            return
        self.adam_critical.step_rows(
            self.gpu_store.params(), self.gpu_store.grads, rows
        )

    # ------------------------------------------------------------------
    def render_view(self, view_id: int):
        """Offloaded *inference*: render one view loading only its
        in-frustum working set from the CPU store.

        The paper's abstract claim ("render a large scene that requires 102
        million Gaussians on a single RTX 4090") is exactly this path —
        GPU memory holds critical attributes plus one view's non-critical
        slice, never the full model.
        """
        sets = self.cull_views([view_id])
        step = build_transfer_plan(sets, [view_id])[0]
        working = GpuWorkingSet(
            self.cpu_store, self.gpu_store, pool=self.pool,
            num_pixels=self._num_pixels,
        )
        model_i = working.assemble(step.working_set, step.loads, step.cached)
        result = self._render(self.cameras[view_id], model_i, self.config.raster)
        working.release()
        return result

    def evaluate(self, view_ids: Sequence[int], targets: Dict[int, np.ndarray]) -> float:
        """Mean PSNR over held-out views (renders through the same
        working-set machinery would be equivalent; uses a snapshot)."""
        model = self.snapshot_model()
        values = []
        for vid in view_ids:
            img = self._render(self.cameras[vid], model, self.config.raster).image
            values.append(psnr(img, targets[vid]))
        return float(np.mean(values)) if values else 0.0

    def rebuild(self, model: GaussianModel, keep_rows: np.ndarray) -> None:
        """Reconstruct stores and optimizer state after densify/prune.

        ``keep_rows`` maps new rows to old rows (-1 = new Gaussian).
        """
        pool = self.pool
        if pool is not None:
            self.gpu_store.release()
        self.gpu_store = GpuCriticalStore(model, pool=pool)
        self.cpu_store = PinnedParameterStore(model)
        self.sh_degree = model.sh_degree
        self.adam_critical.resize(self.gpu_store.params(), keep_rows)
        self.adam_noncritical.resize(
            {"sh": model.sh, "opacity_logits": model.opacity_logits}, keep_rows
        )
