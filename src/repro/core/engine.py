"""Deprecated location — the CLM engine lives in :mod:`repro.engines.clm`.

This shim keeps historical imports (``from repro.core.engine import
CLMEngine, BatchResult``) working; new code should use::

    from repro.engines import CLMEngine, BatchResult, create_engine

``BatchResult`` is now the *unified* per-batch record shared by every
engine (see :mod:`repro.engines.base`).
"""

import warnings

from repro.engines.base import BatchResult
from repro.engines.clm import CRITICAL, NONCRITICAL, CLMEngine

warnings.warn(
    "repro.core.engine is deprecated; use repro.engines "
    "(CLMEngine / BatchResult / create_engine)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["BatchResult", "CLMEngine", "CRITICAL", "NONCRITICAL"]
