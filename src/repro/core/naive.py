"""Naive (ZeRO-Offload-style) offloading — the paper's Figure 3 strawman.

Per batch: transfer *all* parameters CPU->GPU, train the batch one image at
a time with gradient accumulation (activation saving), transfer *all*
gradients GPU->CPU, then run CPU Adam.  No sparsity, no pipelining, no
caching — the comparison point that isolates what CLM's techniques buy
(§6.1 "Naive Offloading" is configured identically: pinned memory, the same
CPU Adam, pre-rendering frustum culling for the kernels).

Functional note: the paper's naive system runs CPU Adam over every
Gaussian; with per-row sparse-Adam state that is *numerically equivalent*
to updating the touched union (untouched rows have zero gradient and zero
moments here because gradients are zeroed per batch), so we update the
union and keep quality results comparable across engines.  The *cost*
models (timed path) still charge the dense full-model Adam the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import adam_overlap, attributes
from repro.core.config import EngineConfig
from repro.core.memory_model import (
    ACT_PER_GAUSSIAN,
    ACT_PER_PIXEL,
    NAIVE_MODEL_BPG,
)
from repro.gaussians.camera import Camera
from repro.gaussians.frustum import cull_gaussians
from repro.gaussians.loss import photometric_loss, psnr
from repro.gaussians.model import GaussianModel
from repro.gaussians.render import render, render_backward
from repro.hardware.memory import MemoryPool
from repro.optim.sparse_adam import SparseAdam
from repro.utils.rng import make_rng


@dataclass
class NaiveBatchResult:
    loss: float
    per_view_loss: Dict[int, float]
    touched_gaussians: int
    loaded_gaussians: int  # = N per batch
    stored_gaussians: int  # = N per batch

    @property
    def loaded_bytes(self) -> float:
        """All 59 floats of every Gaussian cross the link (Figure 14's
        'Naive Offloading' bars equal N x 59 x 4 bytes)."""
        return self.loaded_gaussians * attributes.total_floats() * 4

    @property
    def stored_bytes(self) -> float:
        return self.stored_gaussians * attributes.total_floats() * 4


class NaiveOffloadEngine:
    """Whole-model offloading with batch-granularity transfers."""

    def __init__(
        self,
        model: GaussianModel,
        cameras: Sequence[Camera],
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.config = config or EngineConfig()
        # CPU master copy ("pinned"): all 59 floats live here between steps.
        self.cpu_model = model.clone()
        self.cameras: Dict[int, Camera] = {c.view_id: c for c in cameras}
        self.optimizer = SparseAdam(
            self.cpu_model.parameters(), config=self.config.adam
        )
        self._rng = make_rng(self.config.seed)
        self._render, self._render_backward = self.config.resolve_renderer()
        self._num_pixels = max(
            (c.num_pixels for c in self.cameras.values()), default=0
        )
        self.pool: Optional[MemoryPool] = None
        if self.config.gpu_capacity_bytes is not None:
            self.pool = MemoryPool(self.config.gpu_capacity_bytes, name="gpu")
            self._allocate()

    def _allocate(self) -> None:
        assert self.pool is not None
        n = self.cpu_model.num_gaussians
        self.pool.alloc("naive.params_and_grads", NAIVE_MODEL_BPG * n)
        rho_max = 0.0
        for cam in self.cameras.values():
            s = cull_gaussians(
                cam,
                self.cpu_model.positions,
                self.cpu_model.log_scales,
                self.cpu_model.quaternions,
            )
            rho_max = max(rho_max, s.size / max(1, n))
        self.pool.alloc(
            "naive.activations",
            ACT_PER_GAUSSIAN * rho_max * n + ACT_PER_PIXEL * self._num_pixels,
        )

    @property
    def num_gaussians(self) -> int:
        return self.cpu_model.num_gaussians

    def snapshot_model(self) -> GaussianModel:
        return self.cpu_model.clone()

    # ------------------------------------------------------------------
    def train_batch(
        self,
        view_ids: Sequence[int],
        targets: Dict[int, np.ndarray],
        position_grad_hook=None,
    ) -> NaiveBatchResult:
        cfg = self.config
        batch = len(view_ids)
        n = self.num_gaussians
        # Step 1 (Figure 3): load ALL parameters to the GPU.
        gpu_model = self.cpu_model.clone()
        grads = gpu_model.zero_gradients()
        total_loss = 0.0
        per_view_loss: Dict[int, float] = {}
        sets: List[np.ndarray] = []

        # Step 2: per-image training with gradient accumulation; the naive
        # system also adopts pre-rendering frustum culling (§6.1).
        for vid in view_ids:
            cam = self.cameras[vid]
            s = cull_gaussians(
                cam,
                gpu_model.positions,
                gpu_model.log_scales,
                gpu_model.quaternions,
            )
            sets.append(s)
            sub = gpu_model.gather(s)
            result = self._render(cam, sub, cfg.raster)
            loss, g_img = photometric_loss(
                result.image, targets[vid], cfg.ssim_lambda
            )
            sub_grads = self._render_backward(result, sub, g_img / batch)
            for name, full in grads.items():
                full[s] += sub_grads[name]
            if position_grad_hook is not None:
                position_grad_hook(vid, s, sub_grads["positions"])
            per_view_loss[vid] = loss
            total_loss += loss / batch

        # Steps 3-4: store ALL gradients back; CPU Adam updates parameters.
        touched = adam_overlap.touched_union(sets)
        self.optimizer.step_rows(self.cpu_model.parameters(), grads, touched)
        return NaiveBatchResult(
            loss=total_loss,
            per_view_loss=per_view_loss,
            touched_gaussians=int(touched.size),
            loaded_gaussians=n,
            stored_gaussians=n,
        )

    def evaluate(self, view_ids: Sequence[int], targets: Dict[int, np.ndarray]) -> float:
        values = []
        for vid in view_ids:
            img = self._render(self.cameras[vid], self.cpu_model, self.config.raster).image
            values.append(psnr(img, targets[vid]))
        return float(np.mean(values)) if values else 0.0

    def rebuild(self, model: GaussianModel, keep_rows: np.ndarray) -> None:
        self.cpu_model = model.clone()
        self.optimizer.resize(self.cpu_model.parameters(), keep_rows)
        if self.pool is not None:
            self._allocate()
