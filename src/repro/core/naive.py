"""Deprecated location — see :mod:`repro.engines.naive`.

``NaiveBatchResult`` was folded into the unified
:class:`repro.engines.base.BatchResult`; the alias below keeps old
annotations importable.
"""

from repro.engines.base import BatchResult
from repro.engines.naive import NaiveOffloadEngine

NaiveBatchResult = BatchResult

__all__ = ["NaiveOffloadEngine", "NaiveBatchResult"]
