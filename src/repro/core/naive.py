"""Deprecated location — see :mod:`repro.engines.naive`.

``NaiveBatchResult`` was folded into the unified
:class:`repro.engines.base.BatchResult`; the alias below keeps old
annotations importable.
"""

import warnings

from repro.engines.base import BatchResult
from repro.engines.naive import NaiveOffloadEngine

warnings.warn(
    "repro.core.naive is deprecated; use repro.engines "
    "(NaiveOffloadEngine / BatchResult)",
    DeprecationWarning,
    stacklevel=2,
)

NaiveBatchResult = BatchResult

__all__ = ["NaiveOffloadEngine", "NaiveBatchResult"]
