"""Configuration dataclasses for the engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.gaussians.rasterizer import RasterSettings
from repro.hardware.specs import RTX4090_TESTBED, DeviceTopology, Testbed
from repro.optim.adam import AdamConfig
from repro.resilience.faults import FaultSchedule


def default_adam_config() -> AdamConfig:
    """Per-attribute learning rates in the spirit of the reference 3DGS
    trainer (positions slow, opacity fast)."""
    return AdamConfig(
        lr=2e-3,
        lr_overrides={
            "positions": 2e-4,
            "log_scales": 5e-3,
            "quaternions": 1e-3,
            "sh": 2.5e-3,
            "opacity_logits": 5e-2,
        },
    )


@dataclass
class EngineConfig:
    """Functional-training knobs shared by all engines.

    ``ordering`` is one of ``random | camera | gs_count | tsp`` (Table 4);
    ``enable_cache`` toggles precise Gaussian caching (§4.2.1, the
    "No Cache" ablation of Figure 14); ``enable_overlap_adam`` toggles
    eager per-microbatch Adam chunks (§4.2.2) — with it off, all updates
    run at batch end (functionally identical, different timing).

    ``plan_cache_size`` bounds the engine's
    :class:`repro.planning.PlanCache` (number of memoized
    :class:`~repro.planning.BatchPlan` objects; 0 disables memoization and
    replans every batch).

    ``overlap_workers`` sizes the CLM engine's
    :class:`repro.runtime.OverlapExecutor` worker pool: 0 (the default)
    runs the finalized-chunk CPU Adam inline (synchronous fallback), >= 1
    runs it on worker threads concurrently with the next microbatch's
    forward/backward.  Results are bit-identical either way (the chunks
    are pairwise disjoint and a batch-end barrier orders the boundary) —
    asserted engine-by-engine in ``tests/runtime``.

    ``grad_dtype`` sizes the stores' packed gradient staging buffers
    (``float64`` default for bit-parity with GPU-side accumulation;
    ``float32`` halves offload staging bytes — optimizer moments always
    accumulate in float64).

    ``renderer`` / ``renderer_backward`` select the rendering backend
    (paper §8: CLM is backend-agnostic).  ``None`` means the full tile
    rasterizer; any pair with the same ``(camera, model, settings) ->
    result`` / ``(result, model, dL_dimage) -> grads`` contract works —
    see :mod:`repro.gaussians.point_renderer` for an alternative.

    ``kernel_backend`` selects the compiled kernel backend executing the
    raster/Adam hot loops (:mod:`repro.kernels`): ``"auto"`` (default)
    prefers the fastest available backend (honouring the
    ``REPRO_KERNEL_BACKEND`` env override), an explicit name pins one.
    Engines resolve it once at construction, thread it through
    ``RasterSettings`` and ``PackedSparseAdam``, and stamp the resolved
    name into ``PerfCounters.kernel_backend`` and their plan fingerprints.

    ``use_task_graph`` routes the CLM batch through the dependency
    task-graph executor (:class:`repro.runtime.GraphExecutor`) instead of
    the submit/barrier overlap loop: assembly, raster forward/backward,
    retirement and Adam chunks become explicit graph nodes executed in
    any dependency-respecting order — bit-identical either way, at every
    worker count (``tests/runtime/test_graph_equivalence.py``).

    ``autotune`` turns on the plan-guided adaptive runtime
    (:mod:`repro.autotune`): per batch, the engine predicts the makespan
    of every candidate configuration through the discrete-event simulator
    and executes the argmin, then reconciles predicted vs measured wall
    time back into the cost model.  ``autotune_workers`` /
    ``autotune_group_sizes`` / ``autotune_orderings`` define the candidate
    grid (orderings exclude ``random`` — cache-exempt and RNG-consuming).
    ``autotune_kernel_backends`` defaults to ``None`` = tune everything
    *except* the backend (backend switches change results within their
    1e-10 parity envelope, breaking bit-identical training); pass explicit
    backend names to opt into backend tuning.  Auto-tuning changes timing
    only — never results for worker/group-size choices, and never pool
    accounting (see :mod:`repro.core.memory_model`).
    """

    batch_size: int = 4
    ordering: str = "tsp"
    enable_cache: bool = True
    enable_overlap_adam: bool = True
    overlap_workers: int = 0
    grad_dtype: str = "float64"
    plan_cache_size: int = 8
    ssim_lambda: float = 0.2
    adam: AdamConfig = field(default_factory=default_adam_config)
    raster: RasterSettings = field(default_factory=RasterSettings)
    seed: int = 0
    # Functional GPU memory ceiling (bytes).  None disables enforcement;
    # set it to emulate a small GPU and observe CLM fitting where the
    # baseline OOMs (the quickstart example does exactly this).
    gpu_capacity_bytes: Optional[float] = None
    renderer: Optional[Callable] = None
    renderer_backward: Optional[Callable] = None
    # Sharded training (the clm_sharded engine; ignored by the others).
    # ``num_devices`` sizes the simulated device pool; ``topology``
    # overrides the default homogeneous DeviceTopology built from the
    # RTX 4090 testbed; ``work_stealing`` toggles the deterministic
    # microbatch rebalancing between imbalanced shards.
    num_devices: int = 1
    topology: Optional[DeviceTopology] = None
    work_stealing: bool = True
    # Fault tolerance (the clm_sharded engine).  ``fault_schedule``
    # attaches a seeded :class:`repro.resilience.FaultSchedule` the
    # engine's injector replays batch by batch; with one attached, the
    # engine keeps an in-memory recovery snapshot refreshed every
    # ``recovery_snapshot_every`` successful batches (1 bounds the loss
    # to a single batch per fail-stop — the CI chaos-gate bound).
    fault_schedule: Optional[FaultSchedule] = None
    recovery_snapshot_every: int = 1
    # Compiled-kernel backend for the raster/Adam hot loops ("auto",
    # "numpy", "numba", or any registered plugin backend name).
    kernel_backend: str = "auto"
    # Adaptive runtime (ROADMAP item 5).  ``use_task_graph`` selects the
    # dependency task-graph executor for the CLM batch; ``autotune``
    # enables per-batch simulator-driven configuration choice over the
    # ``autotune_*`` candidate grid.
    use_task_graph: bool = False
    autotune: bool = False
    autotune_workers: "tuple[int, ...]" = (0, 1, 2)
    autotune_group_sizes: "tuple[int, ...]" = (64, 256)
    autotune_orderings: "tuple[str, ...]" = ("tsp", "gs_count", "identity")
    autotune_kernel_backends: Optional["tuple[str, ...]"] = None

    def resolve_renderer(self) -> "tuple[Callable, Callable]":
        """The (forward, backward) pair engines should call."""
        from repro.gaussians.render import render, render_backward

        fwd = self.renderer or render
        bwd = self.renderer_backward or render_backward
        return fwd, bwd


@dataclass
class TimingConfig:
    """Timed-execution knobs (the simulated-hardware side).

    ``paper_num_gaussians`` is the model size N being emulated; the scaled
    scene's measured index sets are multiplied by ``N / N_scaled``
    (DESIGN.md §5).  ``num_batches`` controls how much steady state the
    simulator observes.
    """

    testbed: Testbed = RTX4090_TESTBED
    paper_num_gaussians: Optional[float] = None  # default: scene spec value
    num_batches: int = 8
    batch_size: Optional[int] = None  # default: scene spec batch size
    ordering: str = "tsp"
    enable_cache: bool = True
    enable_overlap_adam: bool = True
    plan_cache_size: int = 8  # BatchPlan memoization across batches
    seed: int = 0
