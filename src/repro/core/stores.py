"""Functional parameter stores — the selective-loading-kernel equivalents.

These classes move *real* NumPy arrays the way CLM moves tensors
(paper §5.2–5.4):

- :class:`PinnedParameterStore` — the CPU side.  Non-critical attributes
  (SH + opacity) of every Gaussian live here in a single packed, padded,
  row-major array ("pinned memory"): all attributes of one Gaussian are
  contiguous and cache-line aligned, exactly the layout the selective
  loading kernel expects.  Gradient accumulation is fetch-add-store, like
  the gradient-offload kernel.
- :class:`GpuCriticalStore` — the GPU side.  Selection-critical attributes
  (position/scale/rotation) of every Gaussian stay resident, along with
  their full-size gradient accumulators (§4.1).
- :class:`GpuWorkingSet` — one microbatch's gathered working set, built
  from cache copies (previous working set) plus fresh loads (pinned store),
  with transfer-byte accounting that the tests reconcile against the
  analytic transfer plan.

A :class:`~repro.hardware.memory.MemoryPool` may be attached to the GPU
side to enforce a capacity: allocations follow the same canonical byte
accounting as :mod:`repro.core.memory_model`, so a small simulated GPU
OOMs the baseline trainer while CLM keeps fitting (the quickstart demo).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core import attributes
from repro.core.memory_model import (
    ACT_PER_GAUSSIAN,
    ACT_PER_PIXEL,
    CLM_BUFFER_BPG,
    CLM_CRITICAL_BPG,
)
from repro.gaussians.model import GaussianModel
from repro.hardware.memory import MemoryPool


@dataclass
class TransferCounters:
    """Running tallies of functional data movement (validated against the
    analytic plan and used for Figure 14-style reporting)."""

    loaded_gaussians: int = 0
    stored_gaussians: int = 0
    cached_gaussians: int = 0

    def loaded_bytes(self) -> float:
        return attributes.noncritical_bytes(self.loaded_gaussians)

    def stored_bytes(self) -> float:
        return attributes.noncritical_bytes(self.stored_gaussians)


class PinnedParameterStore:
    """CPU-pinned packed storage of the non-critical attributes.

    Row layout: ``[sh (K*3 floats) | opacity (1 float) | padding]`` with
    the row padded to whole cache lines (§5.2).

    ``grad_dtype`` sizes the pinned gradient staging buffer — like
    ``RasterSettings.dtype`` it defaults to float64 (bit-parity with the
    historical behavior) and may be dropped to float32 to halve offload
    staging traffic; optimizer moments always accumulate in float64
    (:class:`repro.optim.packed_adam.PackedSparseAdam`), so only the
    staged gradient rows lose precision, never the optimizer state.
    """

    def __init__(
        self, model: GaussianModel, grad_dtype: "str | np.dtype" = "float64"
    ) -> None:
        self.num_rows = model.num_gaussians
        self.sh_basis = model.num_sh_basis
        self.data_floats = self.sh_basis * 3 + 1
        self.row_floats = attributes.padded_row_floats(self.data_floats)
        self.grad_dtype = np.dtype(grad_dtype)
        self.params = np.zeros((self.num_rows, self.row_floats))
        self._pack_into(self.params, np.arange(self.num_rows), model.sh,
                        model.opacity_logits)
        # Pinned gradient buffer (accumulated, full-size like the paper's),
        # padded to the same cache-line-aligned row width as the params so
        # the fused packed Adam moves whole rows as contiguous memcpys.
        self.grads = np.zeros(
            (self.num_rows, self.row_floats), dtype=self.grad_dtype
        )

    # -- layout helpers -------------------------------------------------
    def _pack_into(self, dest, rows, sh, opacity) -> None:
        dest[rows, : self.sh_basis * 3] = sh.reshape(len(rows), -1)
        dest[rows, self.sh_basis * 3] = opacity

    def _unpack(self, packed_rows: np.ndarray) -> Dict[str, np.ndarray]:
        m = packed_rows.shape[0]
        sh = packed_rows[:, : self.sh_basis * 3].reshape(m, self.sh_basis, 3)
        opacity = packed_rows[:, self.sh_basis * 3]
        return {"sh": sh.copy(), "opacity_logits": opacity.copy()}

    # -- the "kernels" ---------------------------------------------------
    def gather_params(self, indices: np.ndarray) -> Dict[str, np.ndarray]:
        """Selective load: gather rows and split attributes (§5.2)."""
        return self._unpack(self.params[indices])

    def write_params(self, indices: np.ndarray, values: Dict[str, np.ndarray]) -> None:
        """CPU Adam writes updated parameters back into pinned rows."""
        self._pack_into(self.params, indices, values["sh"], values["opacity_logits"])

    def accumulate_grads(
        self, indices: np.ndarray, sh_grads: np.ndarray, opacity_grads: np.ndarray
    ) -> None:
        """Gradient offload: fetch old accumulation, add, store (§5.3).

        The staged rows are padded to the full row width so the fetch-add
        runs on whole contiguous rows (padding adds zeros to zeros).
        """
        m = indices.shape[0]
        flat = np.zeros((m, self.row_floats), dtype=self.grad_dtype)
        flat[:, : self.sh_basis * 3] = sh_grads.reshape(m, -1)
        flat[:, self.sh_basis * 3] = opacity_grads
        self.grads[indices] += flat

    def gather_grads(self, indices: np.ndarray) -> Dict[str, np.ndarray]:
        return self._unpack_grads(self.grads[indices])

    def _unpack_grads(self, rows: np.ndarray) -> Dict[str, np.ndarray]:
        m = rows.shape[0]
        sh = rows[:, : self.sh_basis * 3].reshape(m, self.sh_basis, 3)
        opacity = rows[:, self.sh_basis * 3]
        return {"sh": sh.copy(), "opacity_logits": opacity.copy()}

    def zero_grads(self, indices: np.ndarray) -> None:
        self.grads[indices] = 0.0

    @property
    def packed_params(self) -> np.ndarray:
        """``(N, data_floats)`` view of the packed parameter rows (padding
        columns excluded) — the layout
        :meth:`repro.optim.packed_adam.PackedSparseAdam.step_packed`
        gathers, updates and scatters in one fused round-trip."""
        return self.params[:, : self.data_floats]

    def pinned_bytes(self) -> float:
        """Actual data bytes pinned (params + grads), excluding padding, at
        canonical fp32 — the Table 6 quantity."""
        return self.num_rows * 2 * self.data_floats * 4


class GpuCriticalStore:
    """GPU-resident selection-critical attributes with gradient
    accumulators and (conceptually) their on-GPU optimizer state.

    Both parameters and gradient accumulators live in packed ``(N, 10)``
    row-major arrays (``[positions 3 | log_scales 3 | quaternions 4]`` —
    the same packed-row idiom :meth:`PinnedParameterStore._pack_into`
    defines for the non-critical side), so ``accumulate_grads``/
    ``zero_grads`` are one fused scatter each instead of a per-name Python
    loop, and the GPU-side Adam update is one fused
    ``PackedSparseAdam.step_packed`` over :attr:`packed_params` /
    :attr:`packed_grads`.  :attr:`positions` / :attr:`log_scales` /
    :attr:`quaternions` and :attr:`grads` expose named views into the
    packed arrays, so row-indexed consumers (culling, the equivalence
    tests) are unchanged.

    ``grad_dtype`` sizes the gradient accumulators (default float64 for
    bit-parity; see :class:`PinnedParameterStore`).  Parameters and
    optimizer moments stay float64 regardless.
    """

    #: Packed row layout (params and grads share it), in accumulation order.
    GRAD_COLUMNS = {
        "positions": slice(0, 3),
        "log_scales": slice(3, 6),
        "quaternions": slice(6, 10),
    }

    def __init__(
        self,
        model: GaussianModel,
        pool: Optional[MemoryPool] = None,
        grad_dtype: "str | np.dtype" = "float64",
    ) -> None:
        self.num_rows = model.num_gaussians
        self.grad_dtype = np.dtype(grad_dtype)
        self.packed_params = np.empty((self.num_rows, 10))
        self.positions = self.packed_params[:, self.GRAD_COLUMNS["positions"]]
        self.log_scales = self.packed_params[:, self.GRAD_COLUMNS["log_scales"]]
        self.quaternions = self.packed_params[
            :, self.GRAD_COLUMNS["quaternions"]
        ]
        self.positions[:] = model.positions
        self.log_scales[:] = model.log_scales
        self.quaternions[:] = model.quaternions
        self._packed_grads = np.zeros(
            (self.num_rows, 10), dtype=self.grad_dtype
        )
        self.grads = {
            name: self._packed_grads[:, cols]
            for name, cols in self.GRAD_COLUMNS.items()
        }
        self.pool = pool
        if pool is not None:
            pool.alloc("clm.critical_state", CLM_CRITICAL_BPG * self.num_rows)

    @property
    def packed_grads(self) -> np.ndarray:
        """The packed ``(N, 10)`` gradient accumulator."""
        return self._packed_grads

    def params(self) -> Dict[str, np.ndarray]:
        return {
            "positions": self.positions,
            "log_scales": self.log_scales,
            "quaternions": self.quaternions,
        }

    def gather(self, indices: np.ndarray) -> Dict[str, np.ndarray]:
        return {
            "positions": self.positions[indices].copy(),
            "log_scales": self.log_scales[indices].copy(),
            "quaternions": self.quaternions[indices].copy(),
        }

    def accumulate_grads(self, indices: np.ndarray, grads: Dict[str, np.ndarray]) -> None:
        """Fetch-add-store over packed rows: one concatenate, one scatter."""
        flat = np.concatenate(
            [grads[name] for name in self.GRAD_COLUMNS], axis=1
        )
        self._packed_grads[indices] += flat

    def zero_grads(self, indices: np.ndarray) -> None:
        self._packed_grads[indices] = 0.0

    def release(self) -> None:
        if self.pool is not None:
            self.pool.free("clm.critical_state")


class GpuWorkingSet:
    """The double-buffered per-microbatch working set.

    ``assemble`` builds the next buffer from the previous one (cache hits)
    plus pinned-store loads, maintaining the GPU-pool allocation and the
    transfer counters.  Gradients accumulate per working-set row; on
    retirement they are split into carried (handed to the next buffer) and
    stored (offloaded to the pinned gradient buffer).
    """

    def __init__(
        self,
        cpu_store: PinnedParameterStore,
        gpu_store: GpuCriticalStore,
        pool: Optional[MemoryPool] = None,
        num_pixels: int = 0,
    ) -> None:
        self.cpu_store = cpu_store
        self.gpu_store = gpu_store
        self.pool = pool
        self.num_pixels = num_pixels
        self.counters = TransferCounters()
        self.indices: Optional[np.ndarray] = None  # current S_i
        self.noncrit: Dict[str, np.ndarray] = {}
        self.grad_sh: Optional[np.ndarray] = None
        self.grad_opacity: Optional[np.ndarray] = None
        self._max_rows = 0

    # ------------------------------------------------------------------
    def assemble(
        self,
        working_set: np.ndarray,
        loads: np.ndarray,
        cached: np.ndarray,
        carried_grads: "Optional[tuple]" = None,
    ) -> GaussianModel:
        """Materialize the working model for one microbatch.

        ``carried_grads`` is ``(carried_indices, sh, opacity)`` from the
        previous microbatch; those rows start with the accumulated values
        instead of zero (gradient accumulation on the GPU, §4.2.1).
        """
        prev_indices = self.indices
        prev_noncrit = self.noncrit

        sh_basis = self.cpu_store.sh_basis
        m = working_set.size
        sh = np.zeros((m, sh_basis, 3))
        opacity = np.zeros(m)

        if cached.size:
            if prev_indices is None:
                raise RuntimeError("cache copy requested with no previous buffer")
            src = np.searchsorted(prev_indices, cached)
            dst = np.searchsorted(working_set, cached)
            sh[dst] = prev_noncrit["sh"][src]
            opacity[dst] = prev_noncrit["opacity_logits"][src]
            self.counters.cached_gaussians += int(cached.size)
        if loads.size:
            fetched = self.cpu_store.gather_params(loads)
            dst = np.searchsorted(working_set, loads)
            sh[dst] = fetched["sh"]
            opacity[dst] = fetched["opacity_logits"]
            self.counters.loaded_gaussians += int(loads.size)

        crit = self.gpu_store.gather(working_set)
        model = GaussianModel(
            positions=crit["positions"],
            log_scales=crit["log_scales"],
            quaternions=crit["quaternions"],
            sh=sh,
            opacity_logits=opacity,
            sh_degree=_degree_for_basis(sh_basis),
        )

        self.indices = working_set
        self.noncrit = {"sh": sh, "opacity_logits": opacity}
        self.grad_sh = np.zeros_like(sh)
        self.grad_opacity = np.zeros_like(opacity)
        if carried_grads is not None:
            carried_idx, carried_sh, carried_op = carried_grads
            dst = np.searchsorted(working_set, carried_idx)
            self.grad_sh[dst] = carried_sh
            self.grad_opacity[dst] = carried_op

        self._max_rows = max(self._max_rows, m)
        if self.pool is not None:
            self.pool.alloc("clm.double_buffer", CLM_BUFFER_BPG * self._max_rows)
            self.pool.alloc(
                "clm.activations",
                ACT_PER_GAUSSIAN * m + ACT_PER_PIXEL * self.num_pixels,
            )
        return model

    # ------------------------------------------------------------------
    def add_grads(self, grads: Dict[str, np.ndarray]) -> None:
        """Accumulate a backward pass's gradients into the working buffers
        (non-critical) and the resident accumulators (critical)."""
        assert self.indices is not None
        self.grad_sh += grads["sh"]
        self.grad_opacity += grads["opacity_logits"]
        self.gpu_store.accumulate_grads(
            self.indices,
            {
                "positions": grads["positions"],
                "log_scales": grads["log_scales"],
                "quaternions": grads["quaternions"],
            },
        )

    def retire(
        self, stores: np.ndarray, carried: np.ndarray
    ) -> "Optional[tuple]":
        """Offload finalized gradients; return carried grads for the next
        buffer (or None)."""
        assert self.indices is not None
        if stores.size:
            src = np.searchsorted(self.indices, stores)
            self.cpu_store.accumulate_grads(
                stores, self.grad_sh[src], self.grad_opacity[src]
            )
            self.counters.stored_gaussians += int(stores.size)
        if carried.size:
            src = np.searchsorted(self.indices, carried)
            return (carried, self.grad_sh[src].copy(), self.grad_opacity[src].copy())
        return None

    def release(self) -> None:
        if self.pool is not None:
            self.pool.free("clm.double_buffer")
            self.pool.free("clm.activations")
        self.indices = None
        self.noncrit = {}


def _degree_for_basis(basis: int) -> int:
    from repro.gaussians.sh import BASIS_PER_DEGREE

    for degree, k in BASIS_PER_DEGREE.items():
        if k == basis:
            return degree
    raise ValueError(f"invalid SH basis count {basis}")
