"""Dependency-free ASCII plots for benchmark output.

The paper's Figures 5 and 15 are CDF plots; the benchmark harness prints
them as monospace charts so a tee'd run carries the curve shapes, not just
summary points.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

_MARKERS = "*o+x#@%&"


def ascii_cdf(
    curves: "Dict[str, tuple]",
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "CDF",
    x_max: float = None,
) -> str:
    """Render one or more CDF curves (x sorted ascending, y in [0, 1]).

    ``curves`` maps a label to ``(x_values, cdf_values)``.  Returns a
    multi-line string with a legend.
    """
    if not curves:
        return "(no curves)"
    xs_all = [np.asarray(x) for x, _ in curves.values()]
    finite_max = max((float(x.max()) for x in xs_all if x.size), default=1.0)
    hi = x_max if x_max is not None else finite_max
    hi = hi if hi > 0 else 1.0

    canvas = [[" "] * width for _ in range(height)]
    for k, (label, (x, y)) in enumerate(curves.items()):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.size == 0:
            continue
        marker = _MARKERS[k % len(_MARKERS)]
        for col in range(width):
            x_val = hi * (col + 0.5) / width
            pos = np.searchsorted(x, x_val, side="right")
            y_val = y[pos - 1] if pos > 0 else 0.0
            row = height - 1 - int(round(y_val * (height - 1)))
            row = min(max(row, 0), height - 1)
            if canvas[row][col] == " ":
                canvas[row][col] = marker
    lines = []
    for i, row in enumerate(canvas):
        y_tick = 1.0 - i / (height - 1)
        prefix = f"{y_tick:4.1f} |" if i % 5 == 0 or i == height - 1 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      0{' ' * (width - 12)}{hi:.3g} ({x_label})")
    legend = "  ".join(
        f"{_MARKERS[k % len(_MARKERS)]}={label}"
        for k, label in enumerate(curves)
    )
    lines.append(f"      {legend}   (y: {y_label})")
    return "\n".join(lines)


def ascii_bars(
    values: "Dict[str, float]", width: int = 50, fmt: str = "{:.2f}"
) -> str:
    """Horizontal bar chart for quick magnitude comparison."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    label_w = max(len(k) for k in values)
    lines = []
    for label, v in values.items():
        n = 0 if peak <= 0 else int(round(width * v / peak))
        lines.append(
            f"{label.ljust(label_w)} |{'#' * n}{' ' * (width - n)}| "
            + fmt.format(v)
        )
    return "\n".join(lines)
