"""Plain-text table rendering and experiment result logging.

The benchmark harness prints the same rows/series the paper's tables and
figures report and appends machine-readable records to ``results/`` so
EXPERIMENTS.md can be regenerated from a run.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    floatfmt: str = "{:.2f}",
) -> str:
    """Monospace table with auto-sized columns."""

    def render(cell) -> str:
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class ResultsLog:
    """Append-mostly JSONL log of experiment records, with rotation.

    Every benchmark run appends here, so without a bound the file grows
    forever (and used to creep into commits).  ``max_bytes`` caps the file:
    when an append pushes it past the cap, the oldest lines are dropped
    until the newest ones fit in half the budget — recent runs survive,
    ancient ones age out.  ``max_bytes=None`` disables rotation.
    """

    def __init__(
        self,
        path: str = "results/experiments.jsonl",
        max_bytes: Optional[int] = 1_000_000,
    ) -> None:
        self.path = path
        self.max_bytes = max_bytes
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)

    def record(self, experiment: str, data: Dict) -> None:
        entry = {"experiment": experiment, "timestamp": time.time(), **data}
        with open(self.path, "a") as f:
            f.write(json.dumps(entry) + "\n")
        self._rotate()

    def _rotate(self) -> None:
        """Drop oldest lines once the file exceeds ``max_bytes``."""
        if self.max_bytes is None:
            return
        try:
            if os.path.getsize(self.path) <= self.max_bytes:
                return
        except OSError:
            return
        with open(self.path) as f:
            lines = f.readlines()
        budget = self.max_bytes // 2
        kept: List[str] = []
        used = 0
        for line in reversed(lines):
            if used + len(line) > budget and kept:
                break
            kept.append(line)
            used += len(line)
        kept.reverse()
        with open(self.path, "w") as f:
            f.writelines(kept)

    def read_all(self) -> List[Dict]:
        if not os.path.exists(self.path):
            return []
        with open(self.path) as f:
            return [json.loads(line) for line in f if line.strip()]

    def latest(self, experiment: str) -> Optional[Dict]:
        entries = [e for e in self.read_all() if e["experiment"] == experiment]
        return entries[-1] if entries else None
