"""Analysis and reporting: sparsity statistics and table/figure rendering."""

from repro.analysis.sparsity import sparsity_cdf, sparsity_summary
from repro.analysis.reporting import format_table, ResultsLog

__all__ = ["sparsity_cdf", "sparsity_summary", "format_table", "ResultsLog"]
