"""Sparsity statistics (paper §3, Figure 5)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.culling_index import CullingIndex


def sparsity_cdf(index: CullingIndex) -> "tuple[np.ndarray, np.ndarray]":
    """Empirical CDF of per-view sparsity rho (the Figure 5 curves).

    Returns ``(rho_sorted, cumulative_fraction)``.
    """
    rhos = np.sort(index.sparsities())
    if rhos.size == 0:
        return np.zeros(0), np.zeros(0)
    cdf = np.arange(1, rhos.size + 1) / rhos.size
    return rhos, cdf


def sparsity_summary(index: CullingIndex) -> Dict[str, float]:
    """Mean/max/min rho plus percentile markers for reporting."""
    rhos = index.sparsities()
    if rhos.size == 0:
        return {"mean": 0.0, "max": 0.0, "min": 0.0, "p50": 0.0, "p90": 0.0}
    return {
        "mean": float(rhos.mean()),
        "max": float(rhos.max()),
        "min": float(rhos.min()),
        "p50": float(np.percentile(rhos, 50)),
        "p90": float(np.percentile(rhos, 90)),
    }


def cdf_at(rhos: np.ndarray, cdf: np.ndarray, x: float) -> float:
    """Fraction of views with rho <= x (reads a Figure 5 curve)."""
    if rhos.size == 0:
        return 0.0
    pos = np.searchsorted(rhos, x, side="right")
    if pos == 0:
        return 0.0
    return float(cdf[pos - 1])
