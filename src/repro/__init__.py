"""repro — a full reproduction of *CLM: Removing the GPU Memory Barrier for
3D Gaussian Splatting* (ASPLOS 2026).

Public API tour::

    from repro import build_scene, CullingIndex, CLMEngine, run_timed

    scene = build_scene("bigcity", scale=2e-4)          # synthetic dataset
    index = CullingIndex.build(scene.model, scene.cameras)
    result = run_timed("clm", scene, index)             # simulated testbed
    print(result.images_per_second)

Subpackages:

- :mod:`repro.gaussians` — the 3DGS substrate (differentiable rasterizer,
  losses, densification);
- :mod:`repro.core` — CLM itself (offload, caching, TSP scheduling,
  pipelining, memory model) plus the baseline systems;
- :mod:`repro.hardware` — the discrete-event testbed simulator;
- :mod:`repro.scenes` — synthetic dataset generators;
- :mod:`repro.optim` — dense and sparse (CPU) Adam;
- :mod:`repro.analysis` — sparsity statistics and report rendering.
"""

from repro.core import (
    CLMEngine,
    CullingIndex,
    EngineConfig,
    GpuOnlyEngine,
    NaiveOffloadEngine,
    TimingConfig,
    Trainer,
    TrainerConfig,
)
from repro.core.timed import run_timed
from repro.gaussians import GaussianModel, render
from repro.scenes import build_scene

__version__ = "1.0.0"

__all__ = [
    "CLMEngine",
    "NaiveOffloadEngine",
    "GpuOnlyEngine",
    "CullingIndex",
    "EngineConfig",
    "TimingConfig",
    "Trainer",
    "TrainerConfig",
    "run_timed",
    "GaussianModel",
    "render",
    "build_scene",
    "__version__",
]
