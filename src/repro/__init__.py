"""repro — a full reproduction of *CLM: Removing the GPU Memory Barrier for
3D Gaussian Splatting* (ASPLOS 2026).

Public API tour::

    import repro

    # Functional training through the facade (any registered engine):
    scene = repro.make_trainable_scene(reference_gaussians=400, num_views=12)
    sess = repro.session(scene, engine="clm")
    sess.train(batches=50)
    print(sess.metrics.final_psnr)
    sess.checkpoint("run.npz")

    # The registry behind it — the four systems of §6.1 and counting:
    repro.available_engines()     # ('clm', 'naive', 'baseline', 'enhanced')
    engine = repro.create_engine("clm", model, cameras, config)

    # Simulated-testbed performance experiments (Figures 8-15):
    scene = repro.build_scene("bigcity", scale=2e-4)
    index = repro.CullingIndex.build(scene.model, scene.cameras)
    result = repro.run_timed("clm", scene, index)
    print(result.images_per_second)

Subpackages:

- :mod:`repro.engines` — the unified engine protocol, registry, the four
  training systems, and the :class:`~repro.engines.session.TrainingSession`
  facade;
- :mod:`repro.planning` — the batch-planning layer: one
  :class:`~repro.planning.BatchPlan` (ordering, precise caching,
  overlapped-Adam chunks) built by a cached
  :class:`~repro.planning.BatchPlanner` and executed by both the
  functional engines and the simulator;
- :mod:`repro.gaussians` — the 3DGS substrate (differentiable rasterizer,
  losses, densification);
- :mod:`repro.core` — CLM's machinery (offload stores, TSP solver,
  pipelining, memory model) plus the training loop;
- :mod:`repro.runtime` — the asynchronous execution runtime: the
  :class:`~repro.runtime.OverlapExecutor` worker pool that runs the
  finalized-chunk CPU Adam concurrently with the next microbatch
  (``EngineConfig(overlap_workers=...)``), bit-identical to sequential
  execution;
- :mod:`repro.hardware` — the discrete-event testbed simulator;
- :mod:`repro.scenes` — synthetic dataset generators;
- :mod:`repro.optim` — dense, sparse, and fused packed-row (CPU) Adam,
  all sharing one update kernel;
- :mod:`repro.kernels` — the compiled kernel backend registry: the NumPy
  reference and the optional numba JIT kernels behind one
  :class:`~repro.kernels.KernelBackend` protocol, runtime-selected via
  ``EngineConfig(kernel_backend=...)`` / ``repro backends``;
- :mod:`repro.analysis` — sparsity statistics and report rendering.
"""

from repro.core import (
    CullingIndex,
    EngineConfig,
    TimingConfig,
    Trainer,
    TrainerConfig,
)
from repro.core.timed import run_timed
from repro.engines import (
    BatchResult,
    CLMEngine,
    Engine,
    EngineBase,
    GpuOnlyEngine,
    NaiveOffloadEngine,
    TrainingSession,
    available_engines,
    create_engine,
    engine_descriptions,
    register_engine,
    session,
)
from repro.gaussians import GaussianModel, render
from repro.kernels import (
    KernelBackend,
    available_backends,
    backend_status,
    register_backend,
    resolve_backend,
)
from repro.planning import BatchPlan, BatchPlanner
from repro.scenes import build_scene
from repro.scenes.images import make_trainable_scene

__version__ = "1.3.0"

__all__ = [
    # facade + registry (the documented entry points)
    "session",
    "TrainingSession",
    "Engine",
    "EngineBase",
    "BatchResult",
    "available_engines",
    "create_engine",
    "engine_descriptions",
    "register_engine",
    # engine classes (prefer create_engine)
    "CLMEngine",
    "NaiveOffloadEngine",
    "GpuOnlyEngine",
    # configuration + loop
    "EngineConfig",
    "TimingConfig",
    "Trainer",
    "TrainerConfig",
    # the batch-planning layer
    "BatchPlan",
    "BatchPlanner",
    # compiled kernel backends
    "KernelBackend",
    "available_backends",
    "backend_status",
    "register_backend",
    "resolve_backend",
    # simulated-testbed experiments
    "CullingIndex",
    "run_timed",
    # substrate + scenes
    "GaussianModel",
    "render",
    "build_scene",
    "make_trainable_scene",
    "__version__",
]
