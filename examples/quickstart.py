#!/usr/bin/env python
"""Quickstart: train a 3DGS scene with CLM on a memory-capped "GPU".

This is the paper's pitch in one script: on a simulated GPU too small to
hold the full model state, the GPU-only baseline OOMs immediately while CLM
trains the very same model by keeping only selection-critical attributes
(10 of 59 floats per Gaussian) plus the per-view working set on the GPU.

Everything goes through the public API: engines come from the registry
(``repro.create_engine``) and training runs through the
``repro.session(...)`` facade.

Run:
    python examples/quickstart.py
"""

import os

import repro
from repro.core.config import EngineConfig
from repro.core.memory_model import CLM_CRITICAL_BPG, MODEL_STATE_FULL_BPG
from repro.core.trainer import TrainerConfig
from repro.gaussians.model import GaussianModel
from repro.hardware.memory import OutOfMemoryError
from repro.scenes.images import make_trainable_scene


def measured_peak(engine_name, init, scene, targets):
    """One throwaway training batch against an unlimited pool."""
    cfg = EngineConfig(batch_size=4, gpu_capacity_bytes=1e12)
    engine = repro.create_engine(engine_name, init, scene.cameras, cfg)
    engine.train_batch([0, 1, 2, 3], targets)
    return engine.pool.peak


def main() -> None:
    print("Building a synthetic scene (ground-truth renders + SfM-like "
          "init cloud)...")
    scene = make_trainable_scene(
        reference_gaussians=1200, num_views=12, image_size=(32, 24), seed=3
    )
    init = GaussianModel.from_point_cloud(
        scene.init_points, colors=scene.init_colors, sh_degree=1, seed=0
    )
    targets = {c.view_id: img for c, img in zip(scene.cameras, scene.images)}
    n = init.num_gaussians
    print(f"  {n} Gaussians, {scene.num_views} posed training images")

    baseline_peak = measured_peak("baseline", init, scene, targets)
    clm_peak = measured_peak("clm", init, scene, targets)
    capacity = 0.5 * (clm_peak + baseline_peak)
    print(f"\nGPU memory needed — baseline: {baseline_peak / 1e6:.2f} MB "
          f"(model state alone: {MODEL_STATE_FULL_BPG * n / 1e6:.2f} MB), "
          f"CLM: {clm_peak / 1e6:.2f} MB")
    print(f"Simulated GPU capacity: {capacity / 1e6:.2f} MB")

    print("\n[1/2] GPU-only baseline on that budget:")
    try:
        engine = repro.create_engine(
            "baseline", init, scene.cameras,
            EngineConfig(batch_size=4, gpu_capacity_bytes=capacity),
        )
        engine.train_batch([0, 1, 2, 3], targets)
        print("  unexpectedly fit!")
    except OutOfMemoryError as exc:
        print(f"  OOM, as the paper predicts -> {exc}")

    print("\n[2/2] CLM (offloaded) on the same budget:")
    sess = repro.session(
        scene,
        engine="clm",
        config=EngineConfig(batch_size=4, gpu_capacity_bytes=capacity),
        trainer_config=TrainerConfig(num_batches=15, batch_size=4,
                                     eval_every=5),
        initial_model=init,
    )
    sess.train()
    print(f"  resident critical attributes: "
          f"{CLM_CRITICAL_BPG * n / 1e6:.2f} MB on the GPU; "
          f"SH+opacity offloaded to pinned CPU memory")
    for step, psnr in zip(sess.metrics.eval_batches, sess.metrics.psnrs):
        print(f"  batch {step:3d}: PSNR {psnr:.2f} dB")
    print(f"  total parameters moved over 'PCIe': "
          f"{sess.metrics.loaded_bytes / 1e6:.1f} MB")

    out_dir = os.path.join(os.path.dirname(__file__), "output")
    os.makedirs(out_dir, exist_ok=True)
    image = sess.render_view(0).image
    from repro.utils.image_io import save_ppm

    save_ppm(os.path.join(out_dir, "quickstart_render.ppm"), image)
    save_ppm(os.path.join(out_dir, "quickstart_target.ppm"), scene.images[0])
    print(f"\nSaved a trained render vs ground truth to {out_dir}/")


if __name__ == "__main__":
    main()
