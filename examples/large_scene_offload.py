#!/usr/bin/env python
"""Large-scene offloading: the MatrixCity BigCity experiment in miniature.

Reproduces the paper's headline workflow on the simulated RTX 4090 testbed:

1. measure per-view sparsity of a city-scale aerial scene (Figure 5);
2. compute each system's maximum trainable model size (Figure 8);
3. simulate training throughput for naive offloading vs CLM at the largest
   naive-supported size (Figure 11) and show where the time goes
   (Figure 13).

Run:
    python examples/large_scene_offload.py
"""

from repro.analysis.reporting import format_table
from repro.analysis.sparsity import sparsity_summary
from repro.core import memory_model as mm
from repro.core.config import TimingConfig
from repro.core.culling_index import CullingIndex
from repro.core.timed import run_timed
from repro.hardware.specs import RTX4090_TESTBED
from repro.scenes.datasets import build_scene


def main() -> None:
    print("Building a scaled synthetic MatrixCity BigCity "
          "(1/5000 of 100M Gaussians, 192 aerial views)...")
    scene = build_scene("bigcity", scale=2e-4, num_views=192, seed=1)
    index = CullingIndex.build(scene.model, scene.cameras)

    s = sparsity_summary(index)
    print(f"\nPer-view sparsity rho: mean {100 * s['mean']:.2f}%, "
          f"max {100 * s['max']:.2f}%  (paper: 0.39% / 1.06%)")

    profile = mm.profile_from_scene(scene, index)
    rows = []
    for system in mm.SYSTEMS:
        max_n = mm.max_model_size(system, RTX4090_TESTBED, profile)
        rows.append([system, max_n / 1e6])
    print("\n" + format_table(
        ["system", "max model size (M Gaussians)"], rows, "Figure 8-style:",
        floatfmt="{:.1f}",
    ))
    clm_max = rows[-1][1]
    base_max = rows[0][1]
    print(f"-> CLM trains a {clm_max / base_max:.1f}x larger model than the "
          f"GPU-only baseline on the same 24 GB card.")

    n = 46e6  # the paper's naive-max size for BigCity on the 4090
    print(f"\nSimulating training at N = {n/1e6:.0f}M on the RTX 4090 "
          f"testbed...")
    cfg = TimingConfig(testbed=RTX4090_TESTBED, paper_num_gaussians=n,
                       num_batches=6, seed=0)
    naive = run_timed("naive", scene, index, cfg)
    clm = run_timed("clm", scene, index, cfg)
    rows = []
    for label, res in (("naive offloading", naive), ("CLM", clm)):
        d = res.decomposition
        rows.append([
            label,
            res.images_per_second,
            res.load_bytes_per_batch / 1e9,
            d["cpu_adam_trailing"] * 1e3 / res.num_batches,
        ])
    print("\n" + format_table(
        ["system", "img/s", "CPU->GPU GB/batch", "Adam tail ms/batch"],
        rows, "Figure 11/13-style:", floatfmt="{:.2f}",
    ))
    print(f"-> CLM is {clm.images_per_second / naive.images_per_second:.2f}x "
          f"faster while moving "
          f"{naive.load_bytes_per_batch / clm.load_bytes_per_batch:.1f}x "
          f"less parameter data per batch.")


if __name__ == "__main__":
    main()
