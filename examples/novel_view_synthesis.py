#!/usr/bin/env python
"""Novel view synthesis: train with CLM, then render an unseen camera path.

The end-to-end use case from the paper's Figure 1: fit a scene from posed
training images, then fly a *novel* orbit through it and save the frames.
Densification is enabled so the model grows where reconstruction error is
high (§2.1), exercising engine rebuilds mid-training.

Run:
    python examples/novel_view_synthesis.py
"""

import os

import repro
from repro.core.config import EngineConfig
from repro.core.trainer import TrainerConfig
from repro.gaussians.loss import psnr
from repro.gaussians.render import render
from repro.scenes.images import make_trainable_scene
from repro.scenes.trajectories import orbit_trajectory
from repro.utils.image_io import save_ppm


def main() -> None:
    print("Building the scene and training with CLM (+ densification)...")
    scene = make_trainable_scene(
        reference_gaussians=200, num_views=14, image_size=(48, 36), seed=9
    )
    sess = repro.session(
        scene,
        engine="clm",
        config=EngineConfig(batch_size=7, seed=0),
        trainer_config=TrainerConfig(
            num_batches=30, batch_size=7, densify_every=10, densify_start=8,
            max_gaussians=400, eval_every=10, seed=0,
        ),
    )
    history = sess.train()
    print(f"  Gaussians: {history.gaussian_counts[0]} -> "
          f"{history.gaussian_counts[-1]} (densification)")
    print(f"  training-view PSNR: {history.final_psnr:.2f} dB")

    print("\nRendering a novel orbit (cameras never seen in training)...")
    model = sess.snapshot_model()
    novel_cams = orbit_trajectory(
        8, radius=2.6, height=1.3, width=64, height_px=48, jitter=0.0,
        seed=123,
    )
    out_dir = os.path.join(os.path.dirname(__file__), "output")
    os.makedirs(out_dir, exist_ok=True)
    for cam in novel_cams:
        image = render(cam, model, sess.config.raster).image
        path = os.path.join(out_dir, f"novel_view_{cam.view_id:02d}.ppm")
        save_ppm(path, image)
    print(f"  wrote {len(novel_cams)} frames to {out_dir}/")

    # Compare a held-out reference render for a rough novel-view PSNR.
    ref_image = render(novel_cams[0], scene.reference,
                       sess.config.raster).image
    fit_image = render(novel_cams[0], model,
                       sess.config.raster).image
    print(f"  novel-view PSNR vs reference scene: "
          f"{psnr(fit_image, ref_image):.2f} dB")


if __name__ == "__main__":
    main()
