#!/usr/bin/env python
"""Render serving: drive a bursty request stream and report SLO metrics.

A render service faces the inference-side version of the paper's problem:
concurrent cameras share in-frustum Gaussian sets, so the §4.2.3 batch
planning machinery (TSP ordering + fingerprint-keyed plan cache) applies
to *requests* instead of training microbatches.  This example:

1. builds a synthetic scene and a serving session over its model;
2. serves a bursty arrival stream (a popular viewpoint going viral)
   against a bounded queue with expiry-at-dispatch;
3. prints the latency percentiles, throughput, SLO-violation rate,
   plan-cache hit rate, and what LOD culling saved on far views.

Run:
    python examples/render_serving.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.gaussians.model import GaussianModel
from repro.serving import (
    LodConfig,
    ServingConfig,
    ServingSession,
    bursty_stream,
    ring_cameras,
)


def main() -> None:
    print("Building a 400-Gaussian scene and three camera rings...")
    model = GaussianModel.random(400, extent=1.0, sh_degree=1, seed=1)
    centroid = model.positions.mean(axis=0)
    bound = float(
        np.linalg.norm(model.positions - centroid, axis=1).max()
    )
    cams = ring_cameras(
        views_per_ring=4,
        radii=tuple(bound * r for r in (1.3, 4.0, 9.0)),
        center=centroid,
    )

    sess = ServingSession(model, ServingConfig(
        max_batch=4,
        queue_capacity=16,
        plan_cache_size=64,
        drop_expired=True,
        lod=LodConfig(),
        seed=0,
    ))

    print("Serving a bursty stream: 160 requests, ~400 req/s in bursts "
          "of 12, 100 ms SLO...")
    stream = bursty_stream(cams, 160, rate_rps=400.0, burst_size=12,
                           slo_s=0.1, seed=0)
    report = sess.serve(stream)

    print("\n" + format_table(
        ["metric", "value"], report.summary_rows(),
        title="Serving report (bursty stream, 16-deep queue, "
              "expiry-at-dispatch on)",
        floatfmt="{:.2f}",
    ))
    stats = report.planner_stats
    print(f"-> plan cache: {stats['cache_hits']:.0f} of "
          f"{stats['requests']:.0f} batches served from cache "
          f"({100 * stats['hit_rate']:.0f}%), "
          f"{stats['plans_built']:.0f} built, "
          f"{stats['evictions']:.0f} evicted")
    print(f"-> coalescing: {sess.batcher.counters.renders} renders "
          f"answered {sess.batcher.counters.requests} dispatched requests")

    levels = ", ".join(f"L{lv}={n}"
                       for lv, n in report.lod_subset_sizes.items())
    far = [c for c in cams if sess.lod.level_for(c) > 0]
    full = sess.mean_composited(far, use_lod=False)
    culled = sess.mean_composited(far, use_lod=True)
    print(f"-> LOD subsets: {levels}; far views composite "
          f"{culled:.0f} of {full:.0f} Gaussians "
          f"({full / max(culled, 1e-9):.1f}x fewer)")


if __name__ == "__main__":
    main()
