#!/usr/bin/env python
"""Ordering ablation: how microbatch order shapes communication and Adam.

Reproduces the Table 4/5 + Figure 14 study on a street scene (Ithaca-like),
where spatial locality is strongest: views on the same street overlap
heavily, views on different streets share nothing.  The TSP order
(shortest Hamiltonian path under the |S_i ^ S_j| metric, Appendix A.1)
minimizes loads; GS-count order finalizes big views early to shrink the
CPU Adam tail.

Run:
    python examples/ordering_ablation.py
"""

from repro.analysis.reporting import format_table
from repro.core.config import TimingConfig
from repro.core.culling_index import CullingIndex
from repro.planning.orders import STRATEGIES
from repro.core.timed import communication_volume_per_batch, run_timed
from repro.hardware.specs import RTX4090_TESTBED
from repro.scenes.datasets import build_scene


def main() -> None:
    print("Building a scaled synthetic Ithaca365 (street drive, 256 "
          "views)...")
    scene = build_scene("ithaca", scale=2e-4, num_views=256, seed=1)
    index = CullingIndex.build(scene.model, scene.cameras)
    n = 40e6  # paper's naive-max size for Ithaca on the 4090

    rows = []
    for strategy in STRATEGIES:
        cfg = TimingConfig(
            testbed=RTX4090_TESTBED, paper_num_gaussians=n, num_batches=6,
            seed=0, ordering=strategy,
        )
        volume = communication_volume_per_batch(scene, index, cfg)
        res = run_timed("clm", scene, index, cfg)
        rows.append([
            strategy,
            volume / 1e9,
            res.images_per_second,
            res.adam_trailing_s * 1e3,
        ])
    no_cache = communication_volume_per_batch(
        scene, index,
        TimingConfig(testbed=RTX4090_TESTBED, paper_num_gaussians=n,
                     num_batches=6, seed=0, enable_cache=False),
    )
    print("\n" + format_table(
        ["ordering", "CPU->GPU GB/batch", "img/s", "Adam trailing ms"],
        rows,
        title=f"Ithaca at N={n/1e6:.0f}M on RTX 4090 "
              f"(no-cache reference: {no_cache/1e9:.2f} GB/batch)",
        floatfmt="{:.2f}",
    ))
    by = {r[0]: r for r in rows}
    saving = 100 * (1 - by["tsp"][1] / by["random"][1])
    print(f"\n-> TSP ordering moves {saving:.0f}% less data per batch than "
          f"random order (paper Figure 14: 34% on Ithaca).")


if __name__ == "__main__":
    main()
